"""The fine-grained reduction from Orthogonal Vectors to ARSP (Theorem 1).

The paper's conditional lower bound cannot be "run" as an experiment, but the
reduction it is built on can: given an Orthogonal Vectors instance we
construct the uncertain dataset and scoring-function set of the proof, solve
ARSP with any of the package's algorithms, and read the OV answer off the
result.  The test suite uses this module to verify the reduction end to end,
which is the executable content of Theorem 1.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from .dataset import UncertainDataset
from .numeric import PROB_ATOL
from .preference import LinearConstraints


def orthogonal_pair_exists(set_a: Sequence[Sequence[int]],
                           set_b: Sequence[Sequence[int]]) -> bool:
    """Direct quadratic-time check whether an orthogonal pair exists."""
    a = np.asarray(set_a, dtype=int)
    b = np.asarray(set_b, dtype=int)
    if a.size == 0 or b.size == 0:
        return False
    return bool(np.any(a @ b.T == 0))


def build_arsp_instance(set_a: Sequence[Sequence[int]],
                        set_b: Sequence[Sequence[int]]
                        ) -> Tuple[UncertainDataset, LinearConstraints]:
    """Construct the ARSP instance of the Theorem 1 reduction.

    * Every vector ``b ∈ B`` becomes an uncertain object with the single
      instance ``b`` and probability 1.
    * All vectors ``a ∈ A`` are mapped through ``ξ`` (0 → 3/2, 1 → 1/2) and
      collected into one uncertain object ``T_A`` whose instances each have
      probability ``1/|A|``.
    * ``F`` consists of the ``d`` coordinate projections, i.e. the
      unconstrained simplex, under which F-dominance coincides with
      classical dominance.
    """
    a = np.asarray(set_a, dtype=float)
    b = np.asarray(set_b, dtype=float)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("A and B must be 2-D 0/1 arrays")
    if a.shape[1] != b.shape[1]:
        raise ValueError("A and B must share the vector dimension")
    dimension = a.shape[1]

    instance_lists = [[tuple(row)] for row in b]
    probability_lists = [[1.0] for _ in range(len(b))]

    xi = np.where(a == 0, 1.5, 0.5)
    instance_lists.append([tuple(row) for row in xi])
    probability_lists.append([1.0 / len(a)] * len(a))

    dataset = UncertainDataset.from_instance_lists(instance_lists,
                                                   probability_lists)
    constraints = LinearConstraints.unconstrained(dimension)
    return dataset, constraints


def decide_orthogonal_vectors_via_arsp(
        set_a: Sequence[Sequence[int]],
        set_b: Sequence[Sequence[int]],
        arsp_solver) -> bool:
    """Decide OV using an ARSP solver, following the proof of Theorem 1.

    ``arsp_solver(dataset, constraints) -> {instance_id: probability}`` may
    be any of the algorithms in :mod:`repro.algorithms`.  The OV instance has
    an orthogonal pair iff some instance of the ``T_A`` object (the last
    object of the constructed dataset) has rskyline probability zero.
    """
    dataset, constraints = build_arsp_instance(set_a, set_b)
    probabilities: Dict[int, float] = arsp_solver(dataset, constraints)
    t_a = dataset.objects[-1]
    return any(probabilities[instance.instance_id] <= PROB_ATOL
               for instance in t_a)
