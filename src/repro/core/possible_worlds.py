"""Possible-world semantics and ground-truth ARSP computation.

The uncertain dataset induces a distribution over *possible worlds*: each
object independently either materialises as exactly one of its instances or
does not appear at all.  Equation (1) of the paper gives the probability of a
world; equation (2) defines the rskyline probability of an instance as the
total probability of the worlds whose rskyline contains it.

The functions here enumerate worlds explicitly.  They are exponential in the
number of objects and exist purely as ground truth for the test suite and as
the ENUM baseline of the experiments; every other algorithm is validated
against them on small datasets.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .dataset import Instance, UncertainDataset
from .dominance import f_dominates_scores
from .numeric import PROB_ATOL
from .preference import PreferenceRegion, resolve_preference_region


def iter_possible_worlds(dataset: UncertainDataset
                         ) -> Iterator[Tuple[Tuple[Optional[Instance], ...], float]]:
    """Yield every possible world together with its probability.

    A world is represented as a tuple with one entry per object: either the
    materialised :class:`Instance` or ``None`` when the object does not
    appear.  Worlds with zero probability (objects whose instance
    probabilities sum to exactly one never disappear) are skipped.
    """
    per_object_choices: List[List[Tuple[Optional[Instance], float]]] = []
    for obj in dataset.objects:
        choices: List[Tuple[Optional[Instance], float]] = [
            (instance, instance.probability) for instance in obj
        ]
        absent_probability = 1.0 - obj.total_probability
        if absent_probability > PROB_ATOL:
            choices.append((None, absent_probability))
        per_object_choices.append(choices)

    for combination in itertools.product(*per_object_choices):
        probability = 1.0
        world = []
        for instance, choice_probability in combination:
            probability *= choice_probability
            world.append(instance)
        if probability > 0.0:
            yield tuple(world), probability


def world_probability(dataset: UncertainDataset,
                      world: Sequence[Optional[Instance]]) -> float:
    """Probability of one explicit world (equation (1) of the paper)."""
    if len(world) != dataset.num_objects:
        raise ValueError("world must contain one entry per object")
    probability = 1.0
    for obj, instance in zip(dataset.objects, world):
        if instance is None:
            probability *= 1.0 - obj.total_probability
        else:
            if instance.object_id != obj.object_id:
                raise ValueError("instance %d does not belong to object %d"
                                 % (instance.instance_id, obj.object_id))
            probability *= instance.probability
    return probability


def world_rskyline(world: Sequence[Optional[Instance]],
                   region: PreferenceRegion) -> List[Instance]:
    """The rskyline of a single possible world with respect to ``F``.

    An instance belongs to the rskyline iff no instance of *another* object
    in the world F-dominates it (weak dominance on the vertex scores).
    """
    present = [instance for instance in world if instance is not None]
    scores = {instance.instance_id: region.score(instance.values)
              for instance in present}
    result = []
    for candidate in present:
        dominated = False
        for other in present:
            if other.object_id == candidate.object_id:
                continue
            if f_dominates_scores(scores[other.instance_id],
                                  scores[candidate.instance_id]):
                dominated = True
                break
        if not dominated:
            result.append(candidate)
    return result


def brute_force_arsp(dataset: UncertainDataset,
                     constraints) -> Dict[int, float]:
    """Ground-truth ARSP by full possible-world enumeration (equation (2)).

    Returns a dictionary mapping every instance id to its rskyline
    probability (including instances whose probability is zero).
    """
    region = resolve_preference_region(constraints)
    probabilities: Dict[int, float] = {
        instance.instance_id: 0.0 for instance in dataset.instances
    }
    for world, probability in iter_possible_worlds(dataset):
        for instance in world_rskyline(world, region):
            probabilities[instance.instance_id] += probability
    return probabilities


def brute_force_object_arsp(dataset: UncertainDataset,
                            constraints) -> Dict[int, float]:
    """Rskyline probability per *object*: sum over its instances."""
    instance_probabilities = brute_force_arsp(dataset, constraints)
    result: Dict[int, float] = {obj.object_id: 0.0 for obj in dataset.objects}
    for instance in dataset.instances:
        result[instance.object_id] += instance_probabilities[instance.instance_id]
    return result


def number_of_possible_worlds(dataset: UncertainDataset) -> int:
    """Count the possible worlds (useful to guard the ENUM baseline)."""
    count = 1
    for obj in dataset.objects:
        choices = len(obj)
        if 1.0 - obj.total_probability > PROB_ATOL:
            choices += 1
        count *= choices
    return count
