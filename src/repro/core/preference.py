"""Preference model: linear scoring functions with constrained weights.

The paper considers scoring functions ``S_ω(t) = sum_i ω[i] t[i]`` whose
weight vectors live on the unit ``(d-1)``-simplex and are additionally
constrained.  Two families of constraints are supported:

* :class:`LinearConstraints` — an arbitrary system ``A ω <= b`` (Section III
  of the paper).  The key object derived from it is the set of *vertices* of
  the preference region, because Theorem 2 reduces the F-dominance test to a
  comparison of the scores under those vertices.
* :class:`WeightRatioConstraints` — the weight-ratio constraints
  ``l_i <= ω[i]/ω[d] <= h_i`` of Section IV.  These admit the O(d)
  F-dominance test of Theorem 5 and are the constraint class used by the
  eclipse query.

Both expose the same interface (:meth:`vertices`, :meth:`preference_region`)
so the general-constraint algorithms work for either family.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .numeric import SCORE_ATOL

#: Tolerance used when checking feasibility of candidate vertices and when
#: de-duplicating vertices of the preference region.
_FEASIBILITY_ATOL = 1e-9


class PreferenceRegion:
    """The convex polytope ``Ω ⊆ S^{d-1}`` of admissible weight vectors.

    The region is represented by its vertex set ``V`` (a ``(d', d)`` array).
    By Theorem 2, instance ``t`` F-dominates ``s`` iff ``S_ω(t) <= S_ω(s)``
    for every vertex ``ω ∈ V``; mapping instances to their score vectors
    under ``V`` therefore turns F-dominance into classical dominance in a
    ``d'``-dimensional space.
    """

    def __init__(self, vertices: Sequence[Sequence[float]]):
        array = np.asarray(vertices, dtype=float)
        if array.ndim != 2:
            raise ValueError("vertices must form a 2-D array")
        if array.shape[0] == 0:
            raise ValueError("the preference region is empty "
                             "(infeasible constraints)")
        self._vertices = array

    @property
    def vertices(self) -> np.ndarray:
        """Vertex matrix of shape ``(d', d)``."""
        return self._vertices

    @property
    def dimension(self) -> int:
        """Dimensionality ``d`` of the data space."""
        return self._vertices.shape[1]

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``d'`` (the dimensionality of the score space)."""
        return self._vertices.shape[0]

    def score(self, point: Sequence[float]) -> np.ndarray:
        """Score vector ``S_V(t) = (S_ω1(t), ..., S_ωd'(t))`` of one point."""
        return self._vertices @ np.asarray(point, dtype=float)

    def score_matrix(self, points: np.ndarray) -> np.ndarray:
        """Score vectors for a batch of points: ``(n, d) -> (n, d')``."""
        return np.asarray(points, dtype=float) @ self._vertices.T

    def contains(self, weight: Sequence[float],
                 atol: float = _FEASIBILITY_ATOL) -> bool:
        """Check whether ``weight`` lies in the convex hull of the vertices.

        Solved as a small non-negative least squares feasibility problem; the
        method is only used by tests and the interactive constraint
        generator, never on a hot path.
        """
        weight = np.asarray(weight, dtype=float)
        verts = self._vertices
        if verts.shape[0] == 1:
            return bool(np.allclose(verts[0], weight, atol=atol))
        # Solve min ||V^T λ - w|| s.t. λ >= 0, sum λ = 1 with a projected
        # gradient loop (small dimensions, small vertex counts).
        lam = np.full(verts.shape[0], 1.0 / verts.shape[0])
        gram = verts @ verts.T
        target = verts @ weight
        step = 1.0 / (np.linalg.norm(gram, 2) + 1e-12)
        for _ in range(2000):
            grad = gram @ lam - target
            lam = lam - step * grad
            lam = np.clip(lam, 0.0, None)
            total = lam.sum()
            lam = lam / total if total > 0 else np.full_like(lam, 1.0 / len(lam))
        residual = np.linalg.norm(verts.T @ lam - weight)
        return bool(residual <= 1e-6)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "PreferenceRegion(d=%d, vertices=%d)" % (self.dimension,
                                                        self.num_vertices)


@dataclass
class LinearConstraints:
    """Linear constraints ``A ω <= b`` on weights of the unit simplex.

    Attributes
    ----------
    dimension:
        Dimensionality ``d`` of the data space (and of the weight vectors).
    matrix:
        The ``(c, d)`` constraint matrix ``A``.  May be empty (``c = 0``),
        in which case the preference region is the whole simplex and
        F-dominance coincides with classical dominance.
    rhs:
        The ``(c,)`` right-hand side vector ``b``.
    """

    dimension: int
    matrix: np.ndarray
    rhs: np.ndarray

    def __init__(self, dimension: int,
                 matrix: Optional[Sequence[Sequence[float]]] = None,
                 rhs: Optional[Sequence[float]] = None):
        if dimension < 1:
            raise ValueError("dimension must be at least 1")
        self.dimension = int(dimension)
        if matrix is None:
            self.matrix = np.zeros((0, dimension))
            self.rhs = np.zeros(0)
        else:
            self.matrix = np.asarray(matrix, dtype=float).reshape(-1, dimension)
            if rhs is None:
                self.rhs = np.zeros(self.matrix.shape[0])
            else:
                self.rhs = np.asarray(rhs, dtype=float).reshape(-1)
            if self.matrix.shape[0] != self.rhs.shape[0]:
                raise ValueError("matrix has %d rows but rhs has %d entries"
                                 % (self.matrix.shape[0], self.rhs.shape[0]))

    # ------------------------------------------------------------------
    # Constructors for the constraint families used in the experiments
    # ------------------------------------------------------------------
    @classmethod
    def unconstrained(cls, dimension: int) -> "LinearConstraints":
        """The whole simplex: F contains all linear scoring functions."""
        return cls(dimension)

    @classmethod
    def weak_ranking(cls, dimension: int,
                     num_constraints: Optional[int] = None) -> "LinearConstraints":
        """The WR constraint generator of the paper.

        ``ω[i] >= ω[i+1]`` for ``1 <= i <= c``, i.e. earlier attributes are
        at least as important as later ones.  The default number of
        constraints is ``d - 1`` which is also the paper's default.
        """
        if num_constraints is None:
            num_constraints = dimension - 1
        if not 0 <= num_constraints <= dimension - 1:
            raise ValueError("weak ranking supports 0..d-1 constraints")
        rows = []
        for i in range(num_constraints):
            row = np.zeros(dimension)
            row[i] = -1.0
            row[i + 1] = 1.0
            rows.append(row)
        if not rows:
            return cls(dimension)
        return cls(dimension, np.vstack(rows), np.zeros(len(rows)))

    @classmethod
    def from_halfspaces(cls, dimension: int,
                        halfspaces: Sequence[Tuple[Sequence[float], float]]
                        ) -> "LinearConstraints":
        """Build from explicit ``(row, bound)`` pairs meaning ``row·ω <= bound``."""
        if not halfspaces:
            return cls(dimension)
        matrix = np.asarray([row for row, _ in halfspaces], dtype=float)
        rhs = np.asarray([bound for _, bound in halfspaces], dtype=float)
        return cls(dimension, matrix, rhs)

    # ------------------------------------------------------------------
    # Vertex enumeration
    # ------------------------------------------------------------------
    @property
    def num_constraints(self) -> int:
        return self.matrix.shape[0]

    def feasible(self, weight: Sequence[float],
                 atol: float = _FEASIBILITY_ATOL) -> bool:
        """Check whether a weight vector satisfies simplex + constraints."""
        weight = np.asarray(weight, dtype=float)
        if weight.shape != (self.dimension,):
            return False
        if np.any(weight < -atol):
            return False
        if abs(weight.sum() - 1.0) > atol:
            return False
        if self.num_constraints and np.any(
                self.matrix @ weight > self.rhs + atol):
            return False
        return True

    def enumerate_vertices(self) -> np.ndarray:
        """Enumerate the vertices of ``Ω = {ω ∈ S^{d-1} | Aω <= b}``.

        A vertex is the unique solution of a system consisting of the simplex
        equality and ``d - 1`` active inequality constraints drawn from the
        rows of ``A`` and the non-negativity constraints, that additionally
        satisfies all remaining inequalities.  The constraint counts used in
        the paper (``c <= d``, ``d <= 8``) make brute-force enumeration over
        all ``C(c + d, d - 1)`` subsets perfectly adequate.
        """
        d = self.dimension
        if d == 1:
            vertex = np.array([[1.0]])
            if self.num_constraints and np.any(
                    self.matrix @ vertex[0] > self.rhs + _FEASIBILITY_ATOL):
                raise ValueError("infeasible constraints for d=1")
            return vertex

        # Build the pool of inequality constraints: rows of A plus -ω_i <= 0.
        rows: List[np.ndarray] = [self.matrix[i] for i in range(self.num_constraints)]
        bounds: List[float] = [float(self.rhs[i]) for i in range(self.num_constraints)]
        for i in range(d):
            row = np.zeros(d)
            row[i] = -1.0
            rows.append(row)
            bounds.append(0.0)

        pool = np.asarray(rows)
        pool_rhs = np.asarray(bounds)
        ones = np.ones((1, d))

        candidates: List[np.ndarray] = []
        for subset in itertools.combinations(range(len(rows)), d - 1):
            system = np.vstack([ones, pool[list(subset)]])
            rhs = np.concatenate([[1.0], pool_rhs[list(subset)]])
            try:
                solution = np.linalg.solve(system, rhs)
            except np.linalg.LinAlgError:
                continue
            if not np.all(np.isfinite(solution)):
                continue
            if self.feasible(solution):
                candidates.append(solution)

        if not candidates:
            raise ValueError("the preference region is empty "
                             "(infeasible constraint system)")
        return _deduplicate(np.asarray(candidates))

    def preference_region(self) -> PreferenceRegion:
        """Vertex enumeration wrapped into a :class:`PreferenceRegion`."""
        return PreferenceRegion(self.enumerate_vertices())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "LinearConstraints(d=%d, c=%d)" % (self.dimension,
                                                  self.num_constraints)


@dataclass
class WeightRatioConstraints:
    """Weight ratio constraints ``l_i <= ω[i]/ω[d] <= h_i`` (Section IV).

    ``ranges[i] = (l_i, h_i)`` for the first ``d - 1`` attributes; the last
    attribute acts as the reference dimension with ``ω[d] > 0``.
    """

    ranges: Tuple[Tuple[float, float], ...]

    def __init__(self, ranges: Sequence[Tuple[float, float]]):
        converted = []
        for low, high in ranges:
            low = float(low)
            high = float(high)
            if low <= 0.0 or high <= 0.0:
                raise ValueError("weight ratio bounds must be positive")
            if low > high:
                raise ValueError("lower bound %g exceeds upper bound %g"
                                 % (low, high))
            converted.append((low, high))
        if not converted:
            raise ValueError("at least one ratio range is required")
        self.ranges = tuple(converted)

    @property
    def dimension(self) -> int:
        """Dimensionality ``d`` of the data space."""
        return len(self.ranges) + 1

    @property
    def lows(self) -> np.ndarray:
        return np.asarray([low for low, _ in self.ranges], dtype=float)

    @property
    def highs(self) -> np.ndarray:
        return np.asarray([high for _, high in self.ranges], dtype=float)

    # ------------------------------------------------------------------
    # Vertex view (compatible with the general-constraint algorithms)
    # ------------------------------------------------------------------
    def num_rectangle_vertices(self) -> int:
        """Number of vertices of the ratio hyper-rectangle, ``2^(d-1)``."""
        return 1 << (self.dimension - 1)

    def rectangle_vertex(self, k: int) -> np.ndarray:
        """The ``k``-vertex of ``R`` in the paper's lexicographic order.

        ``k = 0`` is ``(l_1, ..., l_{d-1})`` and ``k = 2^{d-1} - 1`` is
        ``(h_1, ..., h_{d-1})``; bit ``i`` of ``k`` (most significant bit
        first) selects ``h_i`` over ``l_i``.
        """
        d_minus_1 = self.dimension - 1
        if not 0 <= k < (1 << d_minus_1):
            raise ValueError("vertex index %d out of range" % k)
        vertex = np.empty(d_minus_1)
        for i, (low, high) in enumerate(self.ranges):
            bit = (k >> (d_minus_1 - 1 - i)) & 1
            vertex[i] = high if bit else low
        return vertex

    def enumerate_vertices(self) -> np.ndarray:
        """Vertices of the induced preference region on the simplex.

        Each vertex ``r`` of the ratio hyper-rectangle maps to the simplex
        weight ``ω = (r, 1) / (sum(r) + 1)`` (the normalisation used in the
        proof of Lemma 1).
        """
        vertices = []
        for k in range(self.num_rectangle_vertices()):
            ratios = self.rectangle_vertex(k)
            weight = np.concatenate([ratios, [1.0]])
            vertices.append(weight / weight.sum())
        return _deduplicate(np.asarray(vertices))

    def preference_region(self) -> PreferenceRegion:
        return PreferenceRegion(self.enumerate_vertices())

    def to_linear_constraints(self) -> LinearConstraints:
        """Express the ratio constraints as ``A ω <= b`` rows.

        ``l_i <= ω[i]/ω[d]`` becomes ``l_i ω[d] - ω[i] <= 0`` and
        ``ω[i]/ω[d] <= h_i`` becomes ``ω[i] - h_i ω[d] <= 0``.
        """
        d = self.dimension
        rows = []
        for i, (low, high) in enumerate(self.ranges):
            lower = np.zeros(d)
            lower[i] = -1.0
            lower[d - 1] = low
            rows.append(lower)
            upper = np.zeros(d)
            upper[i] = 1.0
            upper[d - 1] = -high
            rows.append(upper)
        return LinearConstraints(d, np.vstack(rows), np.zeros(len(rows)))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "WeightRatioConstraints(%s)" % (list(self.ranges),)


def _deduplicate(vertices: np.ndarray,
                 atol: float = _FEASIBILITY_ATOL) -> np.ndarray:
    """Remove (near-)duplicate rows while keeping a stable order."""
    unique: List[np.ndarray] = []
    for row in vertices:
        if not any(np.allclose(row, kept, atol=atol) for kept in unique):
            unique.append(row)
    return np.asarray(unique)


def resolve_preference_region(constraints) -> PreferenceRegion:
    """Return a :class:`PreferenceRegion` for any supported constraint type.

    Accepts :class:`LinearConstraints`, :class:`WeightRatioConstraints`,
    an existing :class:`PreferenceRegion`, or a raw vertex array.
    """
    if isinstance(constraints, PreferenceRegion):
        return constraints
    if isinstance(constraints, (LinearConstraints, WeightRatioConstraints)):
        return constraints.preference_region()
    try:
        array = np.asarray(constraints, dtype=float)
    except (TypeError, ValueError):
        array = None
    if array is not None and array.ndim == 2:
        return PreferenceRegion(array)
    raise TypeError("unsupported constraint specification: %r"
                    % (type(constraints),))
