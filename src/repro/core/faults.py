"""Deterministic fault injection for the sharded execution layer.

The supervised shard scheduler (:mod:`repro.core.backend`) recovers from
worker crashes, hung workers, failed pool initializers and poisoned
shared-memory attaches.  None of those happen on demand in CI, so this
module makes every one of them *reproducible*: a :class:`FaultPlan` is a
small, picklable description of exactly which failure to inject where —
"crash the worker running shard 1's first attempt", "hang shard 0's
second attempt for 30 seconds", "fail every initializer of pool
generation 0" — threaded through ``run_sharded(fault_plan=...)`` (or the
``REPRO_FAULTS`` environment variable) and evaluated inside the worker
processes.

Faults are keyed on coordinates the scheduler controls deterministically:

``shard`` / ``attempt``
    The shard's index in the deterministic ``shard_bounds`` layout and
    the 1-based attempt counter the parent passes along with every
    submission.  Because the layout is a pure function of
    ``(num_targets, workers)`` and attempts are counted in the parent, a
    rule fires on exactly one task execution no matter how the pool
    schedules work.
``generation``
    The pool's rebuild counter: the first pool is generation 0, each
    supervised rebuild increments it.  Initializer and attach faults are
    keyed on the generation so "the first pool fails, the rebuilt pool
    recovers" is a deterministic scenario.

Faults are applied **only inside worker processes** (the pool
initializer and the per-task wrapper).  Serial execution — ``workers=1``,
``backend="serial"`` and the scheduler's serial fallback — never consults
the plan, so a recovery path that degrades to in-process execution cannot
re-trigger the fault that caused the degradation (and an injected
``crash`` can never take down the parent).

The ``REPRO_FAULTS`` spec
-------------------------
Rules are separated by ``;``; each rule is ``kind`` optionally followed
by ``:`` and comma-separated ``key=value`` fields::

    REPRO_FAULTS="crash:shard=1,attempt=1"
    REPRO_FAULTS="hang:shard=0,attempt=2,seconds=30"
    REPRO_FAULTS="init:generation=0;attach:generation=1"

``crash`` and ``hang`` require ``shard`` (``attempt`` defaults to 1,
``seconds`` to 30); ``init`` and ``attach`` take ``generation``
(default 0).  :meth:`FaultPlan.from_env` parses the variable, so any
``repro arsp`` / ``repro bench`` invocation can be run under a fault plan
without code changes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: Environment variable holding a fault-plan spec (see module docstring).
ENV_VAR = "REPRO_FAULTS"

#: Rule kinds applied per task execution (keyed on shard/attempt).
TASK_KINDS = ("crash", "hang")

#: Rule kinds applied at pool startup (keyed on the pool generation).
POOL_KINDS = ("init", "attach")

#: All accepted rule kinds.
KINDS = TASK_KINDS + POOL_KINDS

#: Exit status of an injected worker crash.  ``os._exit`` (no cleanup, no
#: exception propagation) is deliberate: it models the failure class the
#: supervisor must survive — OOM kills and native crashes that never
#: unwind the Python stack.
CRASH_EXIT_CODE = 87

#: Default hang duration (seconds) when a ``hang`` rule omits ``seconds``.
DEFAULT_HANG_SECONDS = 30.0


class FaultInjected(RuntimeError):
    """Raised by injected initializer/attach faults (never by ``crash`` —
    an injected crash exits the worker without raising)."""


@dataclass(frozen=True)
class FaultRule:
    """One injected fault.

    ``crash`` / ``hang`` rules fire when the worker executes the matching
    ``(shard, attempt)`` task; ``init`` / ``attach`` rules fire in every
    worker initializer of the matching pool ``generation``.
    """

    kind: str
    shard: Optional[int] = None
    attempt: int = 1
    seconds: float = DEFAULT_HANG_SECONDS
    generation: int = 0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError("unknown fault kind %r; available: %s"
                             % (self.kind, ", ".join(KINDS)))
        if self.kind in TASK_KINDS:
            if self.shard is None or self.shard < 0:
                raise ValueError("%r faults need a non-negative shard "
                                 "index, got %r" % (self.kind, self.shard))
            if self.attempt < 1:
                raise ValueError("fault attempts are 1-based, got %d"
                                 % self.attempt)
        if self.kind == "hang" and not self.seconds > 0.0:
            raise ValueError("hang faults need seconds > 0, got %r"
                             % (self.seconds,))
        if self.kind in POOL_KINDS and self.generation < 0:
            raise ValueError("%r faults need a non-negative pool "
                             "generation, got %d"
                             % (self.kind, self.generation))

    def to_spec(self) -> str:
        """Spec fragment that parses back into this rule."""
        if self.kind in TASK_KINDS:
            fields = ["shard=%d" % self.shard, "attempt=%d" % self.attempt]
            if self.kind == "hang":
                fields.append("seconds=%g" % self.seconds)
        else:
            fields = ["generation=%d" % self.generation]
        return "%s:%s" % (self.kind, ",".join(fields))


#: Per-kind accepted spec fields and their parsers.
_FIELD_PARSERS = {
    "shard": int,
    "attempt": int,
    "seconds": float,
    "generation": int,
}

_KIND_FIELDS = {
    "crash": ("shard", "attempt"),
    "hang": ("shard", "attempt", "seconds"),
    "init": ("generation",),
    "attach": ("generation",),
}


def _parse_rule(fragment: str) -> FaultRule:
    head, _, tail = fragment.partition(":")
    kind = head.strip().lower()
    if kind not in KINDS:
        raise ValueError("unknown fault kind %r in spec fragment %r; "
                         "available: %s" % (kind, fragment, ", ".join(KINDS)))
    values: Dict[str, object] = {}
    for item in filter(None, (part.strip() for part in tail.split(","))):
        key, separator, raw = item.partition("=")
        key = key.strip().lower()
        if not separator or key not in _KIND_FIELDS[kind]:
            raise ValueError(
                "bad fault field %r in spec fragment %r; %r accepts: %s"
                % (item, fragment, kind, ", ".join(_KIND_FIELDS[kind])))
        try:
            values[key] = _FIELD_PARSERS[key](raw.strip())
        except ValueError:
            raise ValueError("bad %s value %r in spec fragment %r"
                             % (key, raw.strip(), fragment))
    return FaultRule(kind=kind, **values)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultRule` entries.

    Plans are immutable and picklable: the parent ships the plan to every
    worker through the pool initializer, so rule evaluation happens where
    the fault must strike.
    """

    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    def __bool__(self) -> bool:
        return bool(self.rules)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS``-style spec string (see module docs)."""
        rules = tuple(_parse_rule(fragment)
                      for fragment in filter(None, (part.strip()
                                                    for part in
                                                    spec.split(";"))))
        return cls(rules)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None
                 ) -> Optional["FaultPlan"]:
        """Plan described by ``REPRO_FAULTS``, or ``None`` when unset/empty.

        A malformed spec raises ``ValueError`` — a typo in a fault spec
        must never silently run the query without the fault.
        """
        spec = (os.environ if environ is None else environ).get(ENV_VAR, "")
        if not spec.strip():
            return None
        try:
            return cls.from_spec(spec)
        except ValueError as error:
            raise ValueError("invalid %s value %r: %s"
                             % (ENV_VAR, spec, error)) from error

    def to_spec(self) -> str:
        """Spec string that parses back into this plan."""
        return ";".join(rule.to_spec() for rule in self.rules)

    def task_rule(self, shard: int, attempt: int) -> Optional[FaultRule]:
        """First crash/hang rule matching this ``(shard, attempt)`` task."""
        for rule in self.rules:
            if (rule.kind in TASK_KINDS and rule.shard == shard
                    and rule.attempt == attempt):
                return rule
        return None

    def init_rule(self, generation: int) -> Optional[FaultRule]:
        """Initializer-failure rule for this pool generation, if any."""
        for rule in self.rules:
            if rule.kind == "init" and rule.generation == generation:
                return rule
        return None

    def attach_rule(self, generation: int) -> Optional[FaultRule]:
        """Shared-memory attach poison for this pool generation, if any."""
        for rule in self.rules:
            if rule.kind == "attach" and rule.generation == generation:
                return rule
        return None


def apply_task_fault(plan: Optional[FaultPlan], shard: int,
                     attempt: int) -> None:
    """Apply the matching crash/hang rule inside a worker, if any.

    Called by the worker-side task wrapper before the shard function
    runs.  ``crash`` exits the process immediately (no cleanup — the
    point is to model a worker the supervisor loses without warning);
    ``hang`` sleeps for the rule's duration and then proceeds normally,
    so with no shard timeout configured the query still completes — a
    hang is a stall, not a failure, until the scheduler decides it is.
    """
    if plan is None:
        return
    rule = plan.task_rule(shard, attempt)
    if rule is None:
        return
    if rule.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if rule.kind == "hang":
        time.sleep(rule.seconds)
