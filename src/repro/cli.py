"""Command line interface.

Four subcommands cover the common ways of exercising the reproduction
without writing code:

``python -m repro arsp``
    Generate a synthetic workload and compute ARSP with a chosen algorithm,
    printing timing, the ARSP size and the top objects.

``python -m repro figure --id 5a``
    Re-run one of the paper's figure sweeps (scaled down) and print the
    running-time / ARSP-size series.

``python -m repro effectiveness``
    Print the Table I / Table II style rankings on the simulated NBA data.

``python -m repro algorithms``
    List the registered ARSP algorithms.

``python -m repro serve``
    Start the long-lived query daemon (see docs/ARCHITECTURE.md, "Serving
    layer"): load one synthetic workload, keep the index state warm, and
    answer a stream of (constraint, target-set) ARSP queries over a
    line-delimited JSON protocol on a TCP port.  Served results are
    byte-identical to one-shot ``repro arsp``; repeated constraints are
    answered from the shared cross-query cache and concurrent identical
    queries are coalesced into one kernel pass.

``python -m repro stream``
    Build a deterministic time-stepped scenario (per-step dataset deltas
    plus a Zipf-skewed, bursty query stream; see
    :mod:`repro.experiments.scenarios`) and replay it in the requested
    modes — ``oneshot`` recompute, ``incremental`` σ-matrix maintenance,
    warm ``service``, and the ``daemon`` session — printing per-step
    latency, maintenance/cache counters and the byte-equivalence verdict
    across the replayed modes.

``python -m repro bench``
    Run the bench-regression harness over the algorithm × workload matrix
    (IND/ANTI/CORR synthetic distributions plus the IIP/CAR/NBA real-data
    stand-ins, selectable via ``--workloads``) and write
    ``BENCH_arsp.json`` (see PERFORMANCE.md).  ``--workers N`` shards every
    backend-ported algorithm's target axis across ``N`` worker processes,
    with each cell still parity-checked against the serial backend.
    ``--compare BASELINE.json`` additionally prints per-cell deltas against
    a previous payload (``--compare-stat`` picks the median or the
    CI-friendly min of runs, ``--phase-regression-threshold`` gates the
    recorded per-phase medians too) and exits non-zero when any cell
    regresses beyond ``--regression-threshold``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence, Tuple

from .algorithms.registry import list_algorithms
from .core.arsp import arsp_size, compute_arsp, top_k_objects
from .data.constraints import weak_ranking_constraints
from .data.real import nba_dataset
from .data.synthetic import SyntheticConfig, generate_uncertain_dataset
from .experiments.effectiveness import (format_ranking_table,
                                        rskyline_probability_ranking,
                                        skyline_probability_ranking)
from .experiments.figures import figure5_sweep, figure6_sweep, figure8_sweep
from .experiments.harness import sweep_to_series
from .experiments.perf import (COMPARE_STATISTICS, DEFAULT_OUTPUT,
                               DEFAULT_REGRESSION_THRESHOLD, PROFILES,
                               format_bench, format_compare, load_bench,
                               run_bench)
from .experiments.workloads import available_workloads
from .experiments.reporting import format_series, format_table

#: Figure identifiers accepted by ``python -m repro figure --id ...`` mapped
#: to (description, runner).  Runners return printable text.
FIGURE_IDS = ("5a", "5d", "5g", "5j", "5m", "5p", "6a", "8a", "8b")


def _workers_argument(value: str) -> int:
    """Argparse type for ``--workers``: a positive integer.

    Thin wrapper over :func:`repro.core.backend.resolve_workers` — the
    single source of the validation rule — so a bad value fails with a
    clear CLI error before any dataset is generated.  The CPU-count clamp
    is applied later by the execution backend (it only affects spawned
    processes, never the deterministic shard layout).
    """
    from .core.backend import resolve_workers

    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "workers must be a positive integer, got %r" % value)
    try:
        return resolve_workers(workers)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _timeout_argument(value: str) -> float:
    """Argparse type for ``--shard-timeout``: positive seconds."""
    try:
        timeout = float(value)
    except ValueError:
        timeout = 0.0
    if not timeout > 0:
        raise argparse.ArgumentTypeError(
            "shard timeout must be a positive number of seconds, got %r"
            % value)
    return timeout


def _retries_argument(value: str) -> int:
    """Argparse type for ``--max-retries``: a non-negative integer."""
    try:
        retries = int(value)
    except ValueError:
        retries = -1
    if retries < 0:
        raise argparse.ArgumentTypeError(
            "max retries must be a non-negative integer, got %r" % value)
    return retries


def _add_execution_arguments(command: argparse.ArgumentParser) -> None:
    """The supervised-execution flags shared by ``arsp`` and ``bench``.

    They parameterize :class:`repro.core.backend.ExecutionPolicy`; all are
    only meaningful together with ``--workers`` on backend-ported
    algorithms (the serial path has no pool to supervise).
    """
    from .core.backend import BACKENDS, ON_FAILURE

    command.add_argument("--backend", default=None, choices=BACKENDS,
                         help="execution backend for sharded runs "
                              "(default: auto — process pools when "
                              "workers > 1)")
    command.add_argument("--shard-timeout", type=_timeout_argument,
                         default=None, metavar="SECONDS",
                         help="wall-clock budget per shard attempt; a hung "
                              "worker is killed and its shard rescheduled "
                              "(default: no timeout)")
    command.add_argument("--max-retries", type=_retries_argument,
                         default=None, metavar="N",
                         help="extra submissions granted per shard after an "
                              "infrastructure failure (default: 2)")
    command.add_argument("--on-failure", default=None, choices=ON_FAILURE,
                         help="terminal policy once a shard exhausts its "
                              "retries: recompute missing shards serially "
                              "(default), raise after the retries, or raise "
                              "on the first failure")


def _execution_policy(args: argparse.Namespace):
    """Build the ExecutionPolicy requested by the CLI flags (or None)."""
    from .core.backend import ExecutionPolicy

    if (args.shard_timeout is None and args.max_retries is None
            and args.on_failure is None):
        return None
    defaults = ExecutionPolicy()
    return ExecutionPolicy(
        shard_timeout_s=args.shard_timeout,
        max_retries=(defaults.max_retries if args.max_retries is None
                     else args.max_retries),
        on_failure=args.on_failure or defaults.on_failure)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Computing All Restricted Skyline "
                    "Probabilities on Uncertain Datasets' (ICDE 2024)")
    subparsers = parser.add_subparsers(dest="command")

    arsp = subparsers.add_parser("arsp", help="run ARSP on synthetic data")
    arsp.add_argument("--algorithm", default="auto",
                      help="algorithm name (see 'algorithms' command)")
    arsp.add_argument("--objects", type=int, default=200, help="m")
    arsp.add_argument("--instances", type=int, default=4, help="cnt")
    arsp.add_argument("--dimension", type=int, default=4, help="d")
    arsp.add_argument("--region-length", type=float, default=0.2, help="l")
    arsp.add_argument("--incomplete", type=float, default=0.0, help="phi")
    arsp.add_argument("--distribution", default="IND",
                      choices=["IND", "ANTI", "CORR"])
    arsp.add_argument("--constraints", type=int, default=None,
                      help="number of WR constraints (default d-1)")
    arsp.add_argument("--top-k", type=int, default=10)
    arsp.add_argument("--seed", type=int, default=7)
    arsp.add_argument("--workers", type=_workers_argument, default=None,
                      help="shard the target axis across this many worker "
                           "processes (backend-ported algorithms only)")
    _add_execution_arguments(arsp)

    serve = subparsers.add_parser(
        "serve", help="long-lived ARSP query daemon (warm indexes, shared "
                      "cross-query cache)")
    serve.add_argument("--objects", type=int, default=200, help="m")
    serve.add_argument("--instances", type=int, default=4, help="cnt")
    serve.add_argument("--dimension", type=int, default=4, help="d")
    serve.add_argument("--region-length", type=float, default=0.2, help="l")
    serve.add_argument("--incomplete", type=float, default=0.0, help="phi")
    serve.add_argument("--distribution", default="IND",
                       choices=["IND", "ANTI", "CORR"])
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--algorithm", default="auto",
                       help="default algorithm for queries that do not name "
                            "one (default: auto)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port; 0 picks a free one and prints it "
                            "(default: 0)")
    serve.add_argument("--cache-limit", type=int, default=None, metavar="N",
                       help="entry bound of the shared cross-query cache "
                            "(default: 64)")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip the eager index build at startup")
    serve.add_argument("--workers", type=_workers_argument, default=None,
                       help="run every computed query sharded across this "
                            "many worker processes (supervised; the "
                            "ExecutionReport lands in each response)")
    _add_execution_arguments(serve)

    stream = subparsers.add_parser(
        "stream", help="replay a time-stepped delta + Zipf query scenario "
                       "and check replay-mode equivalence")
    stream.add_argument("--seed", type=int, default=0,
                        help="scenario seed; same seed, same script in any "
                             "process (default: 0)")
    stream.add_argument("--steps", type=int, default=4,
                        help="number of time steps (default: 4)")
    stream.add_argument("--objects", type=int, default=48, help="m")
    stream.add_argument("--instances", type=int, default=4, help="cnt")
    stream.add_argument("--dimension", type=int, default=3, help="d")
    stream.add_argument("--distribution", default="IND",
                        choices=["IND", "ANTI", "CORR"])
    stream.add_argument("--inserts", type=int, default=2,
                        help="objects inserted per step (default: 2)")
    stream.add_argument("--deletes", type=int, default=2,
                        help="objects deleted per step (default: 2)")
    stream.add_argument("--updates", type=int, default=2,
                        help="objects updated per step (default: 2)")
    stream.add_argument("--queries", type=int, default=12,
                        help="queries per step (default: 12)")
    stream.add_argument("--pool", type=int, default=6,
                        help="distinct constraints in the pool (default: 6)")
    stream.add_argument("--zipf", type=float, default=1.1,
                        help="Zipf popularity exponent of the pool "
                             "(default: 1.1)")
    stream.add_argument("--modes", default="oneshot,incremental,daemon",
                        help="comma-separated replay modes out of "
                             "oneshot,incremental,service,daemon "
                             "(default: oneshot,incremental,daemon)")

    figure = subparsers.add_parser("figure", help="re-run a figure sweep")
    figure.add_argument("--id", required=True, choices=FIGURE_IDS,
                        help="figure identifier, e.g. 5a")

    subparsers.add_parser("effectiveness",
                          help="Tables I/II on the simulated NBA data")
    subparsers.add_parser("algorithms", help="list registered algorithms")

    bench = subparsers.add_parser(
        "bench", help="run the bench-regression harness (BENCH_arsp.json)")
    bench.add_argument("--profile", default="default",
                       choices=sorted(PROFILES),
                       help="workload scale (default: default)")
    bench.add_argument("--quick", action="store_true",
                       help="shorthand for --profile quick")
    bench.add_argument("--algorithms", default=None,
                       help="comma-separated registry names "
                            "(default: all registered algorithms)")
    bench.add_argument("--workloads", default=None,
                       help="comma-separated workload names out of %s "
                            "(default: the profile's workload axis)"
                            % ",".join(available_workloads()))
    bench.add_argument("--repeats", type=int, default=None,
                       help="override the profile's repeat count")
    bench.add_argument("--output", default=DEFAULT_OUTPUT,
                       help="JSON output path (default: %s); "
                            "'-' skips writing" % DEFAULT_OUTPUT)
    bench.add_argument("--no-check", action="store_true",
                       help="skip the parity check against the reference "
                            "algorithm")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="compare medians against a baseline "
                            "BENCH_arsp.json (any schema version) and exit "
                            "non-zero when a cell regresses beyond the "
                            "threshold")
    bench.add_argument("--regression-threshold", type=float,
                       default=DEFAULT_REGRESSION_THRESHOLD,
                       help="regression factor for --compare "
                            "(default: %.2fx)"
                            % DEFAULT_REGRESSION_THRESHOLD)
    bench.add_argument("--workers", type=_workers_argument, default=None,
                       help="shard every backend-ported algorithm's target "
                            "axis across this many worker processes; every "
                            "cell stays parity-checked against the serial "
                            "backend")
    _add_execution_arguments(bench)
    bench.add_argument("--compare-stat", default="median",
                       choices=sorted(COMPARE_STATISTICS),
                       help="statistic gated by --compare: the median or "
                            "the CI-friendly min of runs (default: median)")
    bench.add_argument("--phase-regression-threshold", type=float,
                       default=None, metavar="FACTOR",
                       help="additionally gate every recorded per-phase "
                            "median (index/query splits) on this factor "
                            "during --compare")
    return parser


def run_arsp(args: argparse.Namespace) -> str:
    config = SyntheticConfig(num_objects=args.objects,
                             max_instances=args.instances,
                             dimension=args.dimension,
                             region_length=args.region_length,
                             incomplete_fraction=args.incomplete,
                             distribution=args.distribution,
                             seed=args.seed)
    dataset = generate_uncertain_dataset(config)
    constraints = weak_ranking_constraints(args.dimension, args.constraints)
    workers = getattr(args, "workers", None)
    start = time.perf_counter()
    result = compute_arsp(dataset, constraints, algorithm=args.algorithm,
                          workers=workers,
                          backend=getattr(args, "backend", None),
                          policy=_execution_policy(args))
    elapsed = time.perf_counter() - start

    lines = [
        "workload: m=%d, instances=%d, d=%d, distribution=%s"
        % (dataset.num_objects, dataset.num_instances, dataset.dimension,
           args.distribution),
        "algorithm %s finished in %.3f s%s; ARSP size %d"
        % (args.algorithm, elapsed,
           "" if workers is None else " (workers=%d)" % workers,
           arsp_size(result)),
    ]
    execution = getattr(result, "execution", None)
    if execution is not None and not execution.clean:
        summary = execution.summary()
        note = ("execution: %d attempt(s), %d pool rebuild(s), "
                "%d timeout(s)"
                % (summary["attempts"], summary["pool_rebuilds"],
                   summary["timeouts"]))
        if summary["recovered_shards"]:
            note += ", recovered shards %s" % summary["recovered_shards"]
        if summary["serial_fallback_shards"]:
            note += (", serial fallback for shards %s"
                     % summary["serial_fallback_shards"])
        lines.append(note)
    lines.append("")
    rows = [(object_id, round(probability, 4))
            for object_id, probability in top_k_objects(dataset, result,
                                                        args.top_k)]
    lines.append(format_table(["object", "Pr_rsky"], rows,
                              title="top-%d objects" % args.top_k))
    return "\n".join(lines)


def run_serve(args: argparse.Namespace) -> int:
    """Start the query daemon and serve until a ``shutdown`` op arrives.

    Prints a single flushed ``listening on HOST:PORT`` line once the
    socket is bound — with ``--port 0`` that line is how callers learn
    the actual port — and a cache-statistics summary on exit.
    """
    import asyncio

    from .serve import ArspServer, ArspService, ArspSession, ServeConfig

    config = SyntheticConfig(num_objects=args.objects,
                             max_instances=args.instances,
                             dimension=args.dimension,
                             region_length=args.region_length,
                             incomplete_fraction=args.incomplete,
                             distribution=args.distribution,
                             seed=args.seed)
    dataset = generate_uncertain_dataset(config)
    serve_config = ServeConfig(algorithm=args.algorithm,
                               workers=args.workers, backend=args.backend,
                               policy=_execution_policy(args))
    if args.cache_limit is not None:
        serve_config.cache_limit = args.cache_limit
    service = ArspService(dataset, serve_config)

    async def _serve() -> None:
        session = ArspSession(service)
        server = ArspServer(session, host=args.host, port=args.port)
        host, port = await server.start()
        if not args.no_warm:
            warm_s = await asyncio.get_running_loop().run_in_executor(
                None, service.warm)
            print("repro serve: warm index built in %.3f s" % warm_s,
                  flush=True)
        print("repro serve: dataset m=%d n=%d d=%d %s; listening on %s:%d"
              % (dataset.num_objects, dataset.num_instances,
                 dataset.dimension, args.distribution, host, port),
              flush=True)
        await server.serve_until_shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    stats = service.stats()
    cache = stats["cache"]
    summary = ("repro serve: answered %d queries; cache %d/%d entries, "
               "%d hit(s), %d miss(es), %d eviction(s)"
               % (stats["queries"], cache["size"], cache["limit"],
                  cache["hits"], cache["misses"], cache["evictions"]))
    if stats["deltas"]:
        summary += ("; %d delta(s): %d entrie(s) retained (%d repaired, "
                    "%d retained hit(s))"
                    % (stats["deltas"], cache["retained"],
                       cache["repaired"], cache["retained_hits"]))
    print(summary)
    return 0


def run_stream(args: argparse.Namespace) -> Tuple[str, int]:
    """Build and replay one scenario; returns (report, exit status).

    The exit status is non-zero when the replayed modes disagree on the
    stream fingerprint — the CLI doubles as an equivalence check.
    """
    from .experiments.scenarios import (REPLAY_MODES, ScenarioSpec,
                                        build_scenario, replay_scenario)

    modes = _parse_names(args.modes) or []
    for mode in modes:
        if mode not in REPLAY_MODES:
            raise ValueError("unknown replay mode %r (expected a subset of "
                             "%s)" % (mode, ", ".join(REPLAY_MODES)))
    if not modes:
        raise ValueError("at least one replay mode is required")
    spec = ScenarioSpec(name="cli", seed=args.seed, steps=args.steps,
                        num_objects=args.objects,
                        max_instances=args.instances,
                        dimension=args.dimension,
                        distribution=args.distribution,
                        inserts_per_step=args.inserts,
                        deletes_per_step=args.deletes,
                        updates_per_step=args.updates,
                        queries_per_step=args.queries,
                        constraint_pool=args.pool,
                        zipf_exponent=args.zipf)
    script = build_scenario(spec)
    lines = [
        "scenario seed=%d: %d steps x (%d inserts, %d deletes, %d updates, "
        "%d queries), pool=%d, zipf=%.2f"
        % (spec.seed, spec.steps, spec.inserts_per_step,
           spec.deletes_per_step, spec.updates_per_step,
           spec.queries_per_step, spec.constraint_pool, spec.zipf_exponent),
        "script fingerprint %s" % script.fingerprint()[:16],
    ]
    reports = []
    for mode in modes:
        report = replay_scenario(script, mode)
        reports.append(report)
        steps = " ".join("%.4f" % seconds for seconds in report.step_seconds)
        lines.append("%-12s total %.4f s  per-step [%s]"
                     % (mode, report.total_seconds, steps))
        stats = report.engine_stats
        if "sigma_hits" in stats:
            lines.append("             sigma cache: %d hit(s), %.0f%% of "
                         "entries copied across deltas"
                         % (stats["sigma_hits"],
                            100.0 * stats["copied_fraction"]))
        cache = stats.get("cache")
        if cache:
            note = ("             query cache: %d hit(s), %d miss(es), hit "
                    "rate %.2f" % (cache["hits"], cache["misses"],
                                   cache["hit_rate"]))
            if cache.get("retained"):
                note += ("; %d retained across deltas (%d hit(s))"
                         % (cache["retained"], cache["retained_hits"]))
            if "coalesced" in stats:
                note += "; %d coalesced" % stats["coalesced"]
            lines.append(note)
    fingerprints = {report.result_fingerprint for report in reports}
    if len(fingerprints) == 1:
        lines.append("all %d replay mode(s) byte-identical (stream "
                     "fingerprint %s)"
                     % (len(reports), reports[0].result_fingerprint[:16]))
        return "\n".join(lines), 0
    lines.append("EQUIVALENCE FAILURE: replay modes disagree on the stream "
                 "fingerprint")
    for report in reports:
        lines.append("  %-12s %s" % (report.mode,
                                     report.result_fingerprint[:16]))
    return "\n".join(lines), 1


def run_figure(figure_id: str) -> str:
    algorithms = ("loop", "kdtt+", "bnb")
    if figure_id == "5a":
        points = figure5_sweep("m", [32, 64, 128], algorithms=algorithms)
        return format_series("m", [p.value for p in points],
                             sweep_to_series(points, algorithms),
                             title="Figure 5(a): IND, vary m (seconds)")
    if figure_id == "5d":
        points = figure5_sweep("cnt", [2, 4, 6], algorithms=algorithms)
        return format_series("cnt", [p.value for p in points],
                             sweep_to_series(points, algorithms),
                             title="Figure 5(d): IND, vary cnt (seconds)")
    if figure_id == "5g":
        points = figure5_sweep("d", [2, 3, 4], algorithms=algorithms)
        return format_series("d", [p.value for p in points],
                             sweep_to_series(points, algorithms),
                             title="Figure 5(g): IND, vary d (seconds)")
    if figure_id == "5j":
        points = figure5_sweep("l", [0.1, 0.3, 0.5], algorithms=algorithms)
        return format_series("l", [p.value for p in points],
                             sweep_to_series(points, algorithms),
                             title="Figure 5(j): IND, vary l (seconds)")
    if figure_id == "5m":
        points = figure5_sweep("phi", [0.0, 0.4, 0.8], algorithms=algorithms)
        return format_series("phi", [p.value for p in points],
                             sweep_to_series(points, algorithms),
                             title="Figure 5(m): IND, vary phi (seconds)")
    if figure_id == "5p":
        points = figure5_sweep("c", [1, 2, 3], algorithms=algorithms,
                               base={"dimension": 4})
        return format_series("c", [p.value for p in points],
                             sweep_to_series(points, algorithms),
                             title="Figure 5(p): IND, vary c (seconds)")
    if figure_id == "6a":
        points = figure6_sweep("IIP", "m", [25, 50, 100],
                               algorithms=algorithms,
                               dataset_kwargs={"num_records": 400})
        return format_series("m%", [p.value for p in points],
                             sweep_to_series(points, algorithms),
                             title="Figure 6(a): IIP, vary m (seconds)")
    if figure_id in ("8a", "8b"):
        parameter = "n" if figure_id == "8a" else "d"
        values: Sequence = [512, 1024, 2048] if figure_id == "8a" else [2, 3, 4]
        rows = figure8_sweep(parameter, values, default_n=1024)
        series = {
            "QUAD": [row["quad_s"] for row in rows],
            "DUAL-S": [row["dual_s_s"] for row in rows],
            "eclipse size": [row["eclipse_size"] for row in rows],
        }
        return format_series(parameter, list(values), series,
                             title="Figure 8: eclipse query (seconds)")
    raise ValueError("unknown figure id %r" % figure_id)


def run_effectiveness() -> str:
    dataset = nba_dataset(num_players=100, max_games=15, num_metrics=3,
                          seed=2021)
    constraints = weak_ranking_constraints(3)
    table1 = rskyline_probability_ranking(dataset, constraints, top_k=14)
    table2 = skyline_probability_ranking(dataset, top_k=14)
    return "\n\n".join([
        format_ranking_table(table1,
                             "Table I - top-14 by rskyline probability "
                             "(* = aggregated rskyline member)"),
        format_ranking_table(table2,
                             "Table II - top-14 by skyline probability",
                             probability_header="Pr_sky"),
    ])


def _parse_names(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [name.strip() for name in value.split(",") if name.strip()]


def run_bench_command(args: argparse.Namespace) -> Tuple[str, int]:
    """Run the bench harness; returns (printable report, exit code)."""
    profile = "quick" if args.quick else args.profile
    output_path = None if args.output == "-" else args.output
    # Read the baseline up front so a bad path or unknown schema fails
    # before minutes of timing work, not after.
    baseline = load_bench(args.compare) if args.compare else None
    payload = run_bench(profile=profile,
                        algorithms=_parse_names(args.algorithms),
                        workloads=_parse_names(args.workloads),
                        repeats=args.repeats, output_path=output_path,
                        check=not args.no_check, workers=args.workers,
                        backend=args.backend, policy=_execution_policy(args))
    lines = [format_bench(payload)]
    if output_path:
        lines.append("wrote %s" % output_path)
    status = 0
    if baseline is not None:
        text, ok = format_compare(
            baseline, payload, threshold=args.regression_threshold,
            statistic=args.compare_stat,
            phase_threshold=args.phase_regression_threshold)
        lines.append(text)
        if not ok:
            status = 1
    return "\n".join(lines), status


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    if args.command == "algorithms":
        print("\n".join(list_algorithms()))
        return 0
    if args.command == "arsp":
        try:
            print(run_arsp(args))
        except ValueError as error:
            # e.g. --workers requested for a serial-only algorithm.
            print("error: %s" % error, file=sys.stderr)
            return 2
        return 0
    if args.command == "serve":
        return run_serve(args)
    if args.command == "stream":
        try:
            text, status = run_stream(args)
        except ValueError as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
        print(text)
        return status
    if args.command == "figure":
        print(run_figure(args.id))
        return 0
    if args.command == "effectiveness":
        print(run_effectiveness())
        return 0
    if args.command == "bench":
        text, status = run_bench_command(args)
        print(text)
        return status
    parser.error("unknown command %r" % args.command)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
