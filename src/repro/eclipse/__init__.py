"""Eclipse query processing on certain datasets (Section IV / Fig. 8).

The eclipse query (Liu et al., ICDE 2021) retrieves all points that are not
eclipse-dominated, where eclipse-dominance is F-dominance under weight ratio
constraints.  The paper shows that the dual-based machinery developed for
ARSP also yields a faster eclipse algorithm (DUAL-S) than the
state-of-the-art index-based method (QUAD); this subpackage contains both,
plus a naive reference implementation.
"""

from .naive import naive_eclipse
from .quad import quad_eclipse
from .dual_s import dual_s_eclipse
from .skyline import fast_skyline

__all__ = ["dual_s_eclipse", "fast_skyline", "naive_eclipse", "quad_eclipse"]
