"""Sort-based skyline computation shared by the eclipse algorithms.

Both eclipse algorithms first restrict attention to the Pareto skyline,
because classical dominance implies eclipse-dominance and therefore the
eclipse is always a subset of the skyline.  The sort-filter-skyline approach
used here processes points in increasing order of their coordinate sum and
compares each point only against the skyline found so far, which is the
standard ``O(n s)`` method and fast in practice for the independent data of
Figure 8.

The filter runs through the kernel layer (docs/ARCHITECTURE.md): points are
processed in sorted blocks, each block is tested against the accepted
skyline members with one :func:`repro.core.kernels.strict_dominance_matrix`
call, and the block's survivors are settled with an accept-and-mark pass
over the intra-block dominance matrix.  The comparison set of every point
is identical to the former per-point loop, so results are unchanged.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.kernels import strict_dominance_matrix

#: Points per batched filter block.
_BLOCK = 512


def fast_skyline(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the Pareto-skyline points (duplicates are all retained)."""
    array = np.asarray(points, dtype=float)
    if array.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    n = array.shape[0]
    if n == 0:
        return []
    order = np.argsort(array.sum(axis=1), kind="stable")
    sorted_points = array[order]

    skyline_rows: List[int] = []
    for begin in range(0, n, _BLOCK):
        end = min(n, begin + _BLOCK)
        block = sorted_points[begin:end]
        # A point earlier in the sum-order cannot have a larger sum, so weak
        # dominance plus a strict improvement somewhere is Pareto dominance.
        # Members accepted before this block are settled; one kernel call
        # rules the whole block against them.
        if skyline_rows:
            members = sorted_points[np.asarray(skyline_rows, dtype=int)]
            alive = ~strict_dominance_matrix(members, block).any(axis=0)
        else:
            alive = np.ones(end - begin, dtype=bool)
        # Survivors still need comparing against members accepted within the
        # same block.  Accept-and-mark reproduces the sequential rule
        # exactly — the earliest live point is always a member, and
        # accepting one excludes precisely the points it dominates — with
        # one dominance row per accepted member instead of a full
        # intra-block matrix.
        excluded = ~alive
        for offset in range(end - begin):
            if excluded[offset]:
                continue
            skyline_rows.append(begin + offset)
            excluded |= strict_dominance_matrix(block[offset][None],
                                                block)[0]
    return sorted(int(order[row]) for row in skyline_rows)
