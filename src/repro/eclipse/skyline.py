"""Sort-based skyline computation shared by the eclipse algorithms.

Both eclipse algorithms first restrict attention to the Pareto skyline,
because classical dominance implies eclipse-dominance and therefore the
eclipse is always a subset of the skyline.  The sort-filter-skyline approach
used here processes points in increasing order of their coordinate sum and
compares each point only against the skyline found so far, which is the
standard ``O(n s)`` method and fast in practice for the independent data of
Figure 8.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.numeric import SCORE_ATOL


def fast_skyline(points: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the Pareto-skyline points (duplicates are all retained)."""
    array = np.asarray(points, dtype=float)
    if array.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    n = array.shape[0]
    if n == 0:
        return []
    order = np.argsort(array.sum(axis=1), kind="stable")
    skyline_indices: List[int] = []
    skyline_points: List[np.ndarray] = []
    for index in order:
        candidate = array[index]
        dominated = False
        for point in skyline_points:
            # A point earlier in the sum-order cannot have a larger sum, so
            # weak dominance plus a strict improvement somewhere is Pareto
            # dominance.
            if np.all(point <= candidate + SCORE_ATOL) and np.any(
                    point < candidate - SCORE_ATOL):
                dominated = True
                break
        if not dominated:
            skyline_indices.append(int(index))
            skyline_points.append(candidate)
    return sorted(skyline_indices)
