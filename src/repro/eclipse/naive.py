"""Naive eclipse query: pairwise O(d) F-dominance tests over the skyline.

This is the reference implementation the optimised algorithms are tested
against.  It already uses the two structural facts shared by all eclipse
algorithms — the eclipse is a subset of the skyline, and the F-dominance
test under weight ratio constraints costs O(d) (Theorem 5) — but performs a
full quadratic comparison over the skyline candidates.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.dominance import weight_ratio_min_margin
from ..core.numeric import SCORE_ATOL
from ..core.preference import WeightRatioConstraints
from .skyline import fast_skyline


def eclipse_dominates(t: Sequence[float], s: Sequence[float],
                      constraints: WeightRatioConstraints) -> bool:
    """Strict eclipse-dominance: ``t`` dominates ``s`` but not vice versa.

    Using the strict (non-mutual) form keeps duplicated points in the result
    together, mirroring the behaviour of the skyline operator.
    """
    forward = weight_ratio_min_margin(t, s, constraints)
    if forward < -SCORE_ATOL:
        return False
    backward = weight_ratio_min_margin(s, t, constraints)
    return backward < -SCORE_ATOL


def naive_eclipse(points: Sequence[Sequence[float]],
                  constraints: WeightRatioConstraints) -> List[int]:
    """Indices of the eclipse points of a certain dataset."""
    array = np.asarray(points, dtype=float)
    if array.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    if array.shape[1] != constraints.dimension:
        raise ValueError("points have dimension %d but the constraints "
                         "expect %d" % (array.shape[1],
                                        constraints.dimension))
    candidates = fast_skyline(array)
    result: List[int] = []
    for i in candidates:
        dominated = False
        for j in candidates:
            if i != j and eclipse_dominates(array[j], array[i], constraints):
                dominated = True
                break
        if not dominated:
            result.append(i)
    return result
