"""QUAD-style eclipse baseline.

The state-of-the-art comparator of Fig. 8 is QUAD (Liu et al., ICDE 2021),
which indexes the dataset with quadtrees and, for every skyline candidate,
iterates over the hyperplanes returned by a window query on its intersection
index — an ``O(s^2)`` verification over the skyline candidates, where ``s``
is the skyline size.  The original intersection index is tied to the authors'
implementation, so this baseline reproduces its *behaviour* (DESIGN.md §5):

* the dataset is indexed with a point quadtree,
* skyline candidates are found through quadtree window queries (a point is a
  candidate iff the window between the origin and the point contains no
  strictly dominating point),
* every candidate is verified against every other candidate with the O(d)
  eclipse-dominance test, i.e. quadratically in the skyline size.

This matches the complexity the paper attributes to QUAD and scales poorly
with dimensionality, which is exactly the contrast Fig. 8 draws with DUAL-S.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.numeric import SCORE_ATOL
from ..core.preference import WeightRatioConstraints
from ..index.quadtree import QuadTree
from .naive import eclipse_dominates


def _has_dominator(array: np.ndarray, tree: QuadTree, index: int) -> bool:
    """Early-exit quadtree search for a point strictly dominating ``index``."""
    point = array[index]
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if np.any(node.lo > point + SCORE_ATOL):
            continue
        if node.is_leaf:
            for other in node.indices:
                if other == index:
                    continue
                other_point = array[other]
                if np.all(other_point <= point + SCORE_ATOL) and np.any(
                        other_point < point - SCORE_ATOL):
                    return True
        else:
            stack.extend(node.children)
    return False


def _skyline_via_quadtree(array: np.ndarray, tree: QuadTree) -> List[int]:
    """Skyline candidates found with window queries on the quadtree."""
    return [index for index in range(array.shape[0])
            if not _has_dominator(array, tree, index)]


def quad_eclipse(points: Sequence[Sequence[float]],
                 constraints: WeightRatioConstraints,
                 leaf_size: int = 16) -> List[int]:
    """Eclipse query answered with the QUAD-style baseline."""
    array = np.asarray(points, dtype=float)
    if array.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    if array.shape[1] != constraints.dimension:
        raise ValueError("points have dimension %d but the constraints "
                         "expect %d" % (array.shape[1],
                                        constraints.dimension))
    if array.shape[0] == 0:
        return []
    tree = QuadTree(array, leaf_size=leaf_size)
    candidates = _skyline_via_quadtree(array, tree)
    result: List[int] = []
    for i in candidates:
        dominated = False
        for j in candidates:
            if i != j and eclipse_dominates(array[j], array[i], constraints):
                dominated = True
                break
        if not dominated:
            result.append(i)
    return sorted(result)
