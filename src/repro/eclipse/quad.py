"""QUAD-style eclipse baseline.

The state-of-the-art comparator of Fig. 8 is QUAD (Liu et al., ICDE 2021),
which indexes the dataset with quadtrees and, for every skyline candidate,
iterates over the hyperplanes returned by a window query on its intersection
index — an ``O(s^2)`` verification over the skyline candidates, where ``s``
is the skyline size.  The original intersection index is tied to the authors'
implementation, so this baseline reproduces its *behaviour* (DESIGN.md §5):

* the dataset is indexed with a point quadtree,
* skyline candidates are found through quadtree window queries (a point is a
  candidate iff the window between the origin and the point contains no
  strictly dominating point),
* every candidate is verified against every other candidate with the O(d)
  eclipse-dominance test, i.e. quadratically in the skyline size.

This matches the complexity the paper attributes to QUAD and scales poorly
with dimensionality, which is exactly the contrast Fig. 8 draws with DUAL-S.

Both stages run through the kernel layer (docs/ARCHITECTURE.md) while
keeping the QUAD access pattern: all window queries share one quadtree
traversal whose node classification and leaf resolution are single batched
kernel calls over the queries still alive at each node, and the quadratic
verification is one :func:`repro.core.kernels.eclipse_dominance_matrix`
call (with a memory-bounded chunked fallback for very large skylines) —
still ``O(s^2)`` work, just without the per-pair Python dispatch.  The
property tests pin agreement with :func:`repro.eclipse.naive.naive_eclipse`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.kernels import (eclipse_dominance_matrix, margin_matrix_terms,
                            strict_dominance_matrix,
                            weight_ratio_margins_matrix_from_terms)
from ..core.numeric import SCORE_ATOL
from ..core.preference import WeightRatioConstraints
from ..index.quadtree import QuadTree

#: Upper bound on the number of margin-matrix entries per verification
#: chunk, matching the budget discipline of the other vectorized paths.
_CHUNK_BUDGET = 4_000_000


def _skyline_via_quadtree(array: np.ndarray, tree: QuadTree) -> List[int]:
    """Skyline candidates found with window queries on the quadtree.

    All ``n`` window queries share one traversal: every node carries the
    set of query points whose dominance window still overlaps it, the
    window test (``node.lo`` must not exceed the query point anywhere) is
    one broadcast over that set, and each leaf settles its surviving
    queries with a single :func:`repro.core.kernels.strict_dominance_matrix`
    call.  Queries already known to be dominated drop out of every later
    node visit, preserving the early-exit behaviour of the former per-point
    search at node granularity.
    """
    n = array.shape[0]
    dominated = np.zeros(n, dtype=bool)
    stack = [(tree.root, np.arange(n))]
    while stack:
        node, queries = stack.pop()
        queries = queries[~dominated[queries]]
        if not len(queries):
            continue
        live = queries[~np.any(node.lo[None, :]
                               > array[queries] + SCORE_ATOL, axis=1)]
        if not len(live):
            continue
        if node.is_leaf:
            if node.indices:
                members = np.asarray(node.indices, dtype=int)
                strict = strict_dominance_matrix(array[members], array[live])
                strict &= members[:, None] != live[None, :]
                dominated[live] |= strict.any(axis=0)
        else:
            for child in node.children:
                stack.append((child, live))
    return [int(index) for index in np.flatnonzero(~dominated)]


def quad_eclipse(points: Sequence[Sequence[float]],
                 constraints: WeightRatioConstraints,
                 leaf_size: int = 16) -> List[int]:
    """Eclipse query answered with the QUAD-style baseline."""
    array = np.asarray(points, dtype=float)
    if array.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    if array.shape[1] != constraints.dimension:
        raise ValueError("points have dimension %d but the constraints "
                         "expect %d" % (array.shape[1],
                                        constraints.dimension))
    if array.shape[0] == 0:
        return []
    tree = QuadTree(array, leaf_size=leaf_size)
    candidates = _skyline_via_quadtree(array, tree)
    dominated = _verify_candidates(array[np.asarray(candidates, dtype=int)],
                                   constraints)
    return sorted(int(candidates[i]) for i in np.flatnonzero(~dominated))


def _verify_candidates(candidate_points: np.ndarray,
                       constraints: WeightRatioConstraints) -> np.ndarray:
    """The O(s^2) verification over the skyline candidates.

    ``out[i]`` iff some other candidate strictly eclipse-dominates
    candidate ``i``.  When the full pairwise matrix fits the module
    budget — the common case — this is one
    :func:`repro.core.kernels.eclipse_dominance_matrix` call; large
    (e.g. anti-correlated) skylines fall back to evaluating the same
    comparisons in target chunks, with the per-point margin terms of the
    full candidate block computed once and shared by every chunk.
    """
    size = candidate_points.shape[0]
    dominated = np.zeros(size, dtype=bool)
    if size < 2:
        return dominated
    lows = constraints.lows
    highs = constraints.highs
    head = max(1, constraints.dimension - 1)
    if size * size * head <= _CHUNK_BUDGET:
        return eclipse_dominance_matrix(candidate_points, lows,
                                        highs).any(axis=0)
    all_terms = margin_matrix_terms(candidate_points, lows, highs)
    chunk = max(1, _CHUNK_BUDGET // (size * head))
    for begin in range(0, size, chunk):
        end = min(size, begin + chunk)
        block = candidate_points[begin:end]
        # forward[t, k]: margin of candidate k dominating target begin + t;
        # backward[k, t]: the reverse direction.
        forward = weight_ratio_margins_matrix_from_terms(block, all_terms)
        backward = weight_ratio_margins_matrix_from_terms(
            candidate_points, margin_matrix_terms(block, lows, highs))
        hit = (forward >= -SCORE_ATOL) & (backward.T < -SCORE_ATOL)
        rows = np.arange(begin, end)
        hit[rows - begin, rows] = False
        dominated[begin:end] = hit.any(axis=1)
    return dominated
