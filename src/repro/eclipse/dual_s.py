"""DUAL-S: the dual/shift based eclipse algorithm of Section V-D.

DUAL-S restricts attention to the Pareto skyline (the eclipse is always a
subset of it), indexes the skyline points with a kd-tree and, for every
candidate ``t``, asks whether *any* other skyline point eclipse-dominates it.
The multi-level structure of the ARSP algorithm is not needed because a
single non-empty "half-space" answer already excludes ``t`` — the per
candidate cost is a pruned tree search instead of the QUAD baseline's pass
over all candidates, which is where the order-of-magnitude gap of Fig. 8
comes from.

The half-space emptiness query uses the same monotone margin bound as the
DUAL ARSP algorithm: the margin of Theorem 5 is monotonically decreasing in
the coordinates of the candidate dominator, so a kd-tree node can be
discarded as soon as the margin evaluated at its min corner is negative.

The query path runs through the kernel layer (docs/ARCHITECTURE.md): all
candidates share a single tree traversal in which every node prunes its
still-open candidates with one :func:`repro.core.kernels.weight_ratio_margins_rows`
evaluation of the min-corner margin, and each leaf settles its survivors
with one batched forward/backward margin matrix instead of a per-point
``eclipse_dominates`` loop.  A candidate found dominated drops out of every
later node visit, preserving the early-exit behaviour of the former
per-candidate search at node granularity.  The margin comparisons equal
those of the scalar predicate, and self-exclusion is by index — the naive
algorithm's ``i != j`` rule — rather than the former value-closeness test,
which misclassified genuine dominators as ties at large coordinate
magnitudes.  The property tests pin agreement with
:func:`repro.eclipse.naive.naive_eclipse`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.kernels import (weight_ratio_margins_matrix,
                            weight_ratio_margins_rows)
from ..core.numeric import SCORE_ATOL
from ..core.preference import WeightRatioConstraints
from ..index.kdtree import KDTree
from .skyline import fast_skyline


def dual_s_eclipse(points: Sequence[Sequence[float]],
                   constraints: WeightRatioConstraints,
                   leaf_size: int = 8) -> List[int]:
    """Eclipse query answered with the DUAL-S algorithm."""
    array = np.asarray(points, dtype=float)
    if array.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    if array.shape[1] != constraints.dimension:
        raise ValueError("points have dimension %d but the constraints "
                         "expect %d" % (array.shape[1],
                                        constraints.dimension))
    if array.shape[0] == 0:
        return []

    candidates = np.asarray(fast_skyline(array), dtype=int)
    candidate_points = array[candidates]
    tree = KDTree(candidate_points, leaf_size=leaf_size)
    lows = constraints.lows
    highs = constraints.highs

    num_candidates = len(candidates)
    dominated = np.zeros(num_candidates, dtype=bool)
    stack = [(tree.root, np.arange(num_candidates))]
    while stack:
        node, open_rows = stack.pop()
        open_rows = open_rows[~dominated[open_rows]]
        if not len(open_rows):
            continue
        # The margin is monotone decreasing in the dominator's coordinates,
        # so its maximum over the node box sits at the min corner; targets
        # for which even that fails cannot find a dominator inside.
        corner_margins = weight_ratio_margins_rows(
            candidate_points[open_rows],
            np.broadcast_to(node.lo, (len(open_rows), node.lo.shape[0])),
            lows, highs)
        live = open_rows[corner_margins >= -SCORE_ATOL]
        if not len(live):
            continue
        if node.is_leaf:
            member_rows = np.asarray(node.indices)
            members = candidate_points[member_rows]
            targets = candidate_points[live]
            # forward[t, k]: margin of leaf member k F-dominating target t;
            # backward[t, k]: the reverse direction.  Strict eclipse
            # dominance requires the first and forbids the second; the
            # target itself is excluded by row identity, and exact
            # duplicates never pass the strict test (their backward margin
            # is zero), matching the naive algorithm's i != j rule.
            forward = weight_ratio_margins_matrix(targets, members, lows,
                                                  highs)
            backward = weight_ratio_margins_matrix(members, targets, lows,
                                                   highs).T
            self_pair = member_rows[None, :] == live[:, None]
            hit = ((forward >= -SCORE_ATOL) & (backward < -SCORE_ATOL)
                   & ~self_pair)
            dominated[live] |= hit.any(axis=1)
        else:
            stack.append((node.left, live))
            stack.append((node.right, live))
    return sorted(int(index) for index in candidates[~dominated])
