"""DUAL-S: the dual/shift based eclipse algorithm of Section V-D.

DUAL-S restricts attention to the Pareto skyline (the eclipse is always a
subset of it), indexes the skyline points with a kd-tree and, for every
candidate ``t``, asks whether *any* other skyline point eclipse-dominates it.
The multi-level structure of the ARSP algorithm is not needed because a
single non-empty "half-space" answer already excludes ``t`` — the per
candidate cost is a pruned tree search instead of the QUAD baseline's pass
over all candidates, which is where the order-of-magnitude gap of Fig. 8
comes from.

The half-space emptiness query uses the same monotone margin bound as the
DUAL ARSP algorithm: the margin of Theorem 5 is monotonically decreasing in
the coordinates of the candidate dominator, so a kd-tree node can be
discarded as soon as the margin evaluated at its min corner is negative.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.numeric import SCORE_ATOL
from ..core.preference import WeightRatioConstraints
from ..index.kdtree import OUTSIDE, PARTIAL, KDTree
from .naive import eclipse_dominates
from .skyline import fast_skyline


def dual_s_eclipse(points: Sequence[Sequence[float]],
                   constraints: WeightRatioConstraints,
                   leaf_size: int = 8) -> List[int]:
    """Eclipse query answered with the DUAL-S algorithm."""
    array = np.asarray(points, dtype=float)
    if array.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    if array.shape[1] != constraints.dimension:
        raise ValueError("points have dimension %d but the constraints "
                         "expect %d" % (array.shape[1],
                                        constraints.dimension))
    if array.shape[0] == 0:
        return []

    candidates = fast_skyline(array)
    candidate_points = array[candidates]
    tree = KDTree(candidate_points, leaf_size=leaf_size)
    lows = constraints.lows
    highs = constraints.highs
    d = constraints.dimension

    result: List[int] = []
    for position, index in enumerate(candidates):
        target = array[index]

        def margin(point: np.ndarray) -> float:
            diffs = target[:d - 1] - point[:d - 1]
            coeffs = np.where(diffs > 0.0, lows, highs)
            return float(np.dot(coeffs, diffs) + target[d - 1] - point[d - 1])

        def classifier(lo: np.ndarray, hi: np.ndarray) -> int:
            # The margin is monotone decreasing in the dominator's
            # coordinates, so if even the node's min corner fails the test
            # nothing inside the node can dominate the target.
            if margin(lo) < -SCORE_ATOL:
                return OUTSIDE
            return PARTIAL

        def predicate(point: np.ndarray) -> bool:
            if np.allclose(point, target, atol=SCORE_ATOL):
                return False
            return eclipse_dominates(point, target, constraints)

        if not tree.any_match(classifier, predicate):
            result.append(index)
    return sorted(result)
