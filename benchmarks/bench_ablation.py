"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not a figure of the paper, but the paper's Section III discusses each of
these choices qualitatively; the ablations make the effect measurable:

* integrated construction + zero pruning (KDTT+ vs KDTT);
* partitioning scheme (kd-tree vs quadtree splits) at low and moderate
  dimensionality;
* R-tree fan-out of the branch-and-bound algorithm;
* the O(d) weight-ratio dominance test (Theorem 5) vs the generic vertex
  test (Theorem 2) inside the DUAL algorithm's query.
"""

import pytest

from repro.algorithms import (branch_and_bound_arsp, dual_arsp,
                              kdtree_traversal_arsp, loop_arsp,
                              quadtree_traversal_arsp)
from repro.core.preference import WeightRatioConstraints
from workloads import bench_constraints, bench_dataset, run_once


@pytest.mark.parametrize("integrated", [True, False])
def test_ablation_integrated_construction(benchmark, integrated):
    """KDTT+ (integrated + pruned) vs KDTT (full tree)."""
    dataset = bench_dataset(distribution="CORR")
    constraints = bench_constraints()
    run_once(benchmark, kdtree_traversal_arsp, dataset, constraints,
             integrated=integrated)
    benchmark.extra_info["integrated"] = integrated


@pytest.mark.parametrize("scheme", ["kd", "quad"])
@pytest.mark.parametrize("d", [2, 4])
def test_ablation_partitioning_scheme(benchmark, scheme, d):
    """Quadtree splits win at low d', kd-tree splits scale better."""
    dataset = bench_dataset(dimension=d)
    constraints = bench_constraints(dimension=d)
    implementation = (kdtree_traversal_arsp if scheme == "kd"
                      else quadtree_traversal_arsp)
    run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["scheme"] = scheme
    benchmark.extra_info["d"] = d


@pytest.mark.parametrize("max_entries", [8, 16, 64])
def test_ablation_bnb_fanout(benchmark, max_entries):
    """R-tree fan-out of the branch-and-bound algorithm."""
    dataset = bench_dataset()
    constraints = bench_constraints()
    run_once(benchmark, branch_and_bound_arsp, dataset, constraints,
             max_entries=max_entries)
    benchmark.extra_info["max_entries"] = max_entries


@pytest.mark.parametrize("method", ["dual-theorem5", "loop-vertex-test"])
def test_ablation_ratio_dominance_test(benchmark, method):
    """Theorem 5's O(d) test (inside DUAL) vs the generic vertex test
    (inside LOOP) on the same weight-ratio workload."""
    dataset = bench_dataset(dimension=3)
    constraints = WeightRatioConstraints([(0.5, 2.0), (0.5, 2.0)])
    implementation = dual_arsp if method == "dual-theorem5" else loop_arsp
    run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["method"] = method
