"""Figure 5(g)-(i): running time and ARSP size vs. data dimensionality d.

Paper: d from 2 to 8.  Scaled-down sweep: d in {2, 3, 4, 5} on IND.
Expected shape: every algorithm slows down as d grows and the ARSP size
increases (sparser data means fewer dominations); the tree-traversal
algorithms win at low d but scale worse than B&B.
"""

import pytest

from repro.algorithms import get_algorithm
from repro.core.arsp import arsp_size
from workloads import bench_constraints, bench_dataset, run_once

ALGORITHMS = ["loop", "kdtt+", "qdtt+", "bnb"]
D_VALUES = [2, 3, 4, 5]


@pytest.mark.parametrize("d", D_VALUES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_vary_d(benchmark, algorithm, d):
    dataset = bench_dataset(dimension=d)
    constraints = bench_constraints(dimension=d)
    implementation = get_algorithm(algorithm)
    result = run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["d"] = d
    benchmark.extra_info["arsp_size"] = arsp_size(result)
