"""Figure 8: eclipse query processing — DUAL-S vs the QUAD baseline.

Paper: IND data, n from 2^10 to 2^20, d from 2 to 6, four ratio ranges;
DUAL-S beats QUAD by at least an order of magnitude and the gap widens with
d.  Scaled-down sweeps: n in {1024, 4096}, d in {2, 3, 4}, all four ratio
ranges at n = 1024, d = 3.
"""

import pytest

from repro.core.preference import WeightRatioConstraints
from repro.data.synthetic import generate_certain_points
from repro.eclipse import dual_s_eclipse, quad_eclipse
from workloads import BENCH_SEED, run_once

ALGORITHMS = {"quad": quad_eclipse, "dual-s": dual_s_eclipse}
DEFAULT_RANGE = (0.36, 2.75)
RATIO_RANGES = [(0.84, 1.19), (0.58, 1.73), (0.36, 2.75), (0.18, 5.67)]


def workload(n, d, ratio):
    points = generate_certain_points(n, d, distribution="IND",
                                     seed=BENCH_SEED)
    constraints = WeightRatioConstraints([ratio] * (d - 1))
    return points, constraints


@pytest.mark.parametrize("n", [1024, 4096])
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fig8_vary_n(benchmark, algorithm, n):
    points, constraints = workload(n, 3, DEFAULT_RANGE)
    result = run_once(benchmark, ALGORITHMS[algorithm], points, constraints)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["eclipse_size"] = len(result)


@pytest.mark.parametrize("d", [2, 3, 4])
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fig8_vary_d(benchmark, algorithm, d):
    points, constraints = workload(1024, d, DEFAULT_RANGE)
    result = run_once(benchmark, ALGORITHMS[algorithm], points, constraints)
    benchmark.extra_info["d"] = d
    benchmark.extra_info["eclipse_size"] = len(result)


@pytest.mark.parametrize("ratio", RATIO_RANGES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_fig8_vary_q(benchmark, algorithm, ratio):
    points, constraints = workload(1024, 3, ratio)
    result = run_once(benchmark, ALGORITHMS[algorithm], points, constraints)
    benchmark.extra_info["q"] = list(ratio)
    benchmark.extra_info["eclipse_size"] = len(result)
