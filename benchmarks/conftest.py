"""Shared setup for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  The paper's
workloads (m = 16K objects, cnt = 400 instances per object) are far beyond
what the pure-Python implementation can time in a benchmark run, so the
sweeps here use scaled-down sizes with the same *relative* structure; the
series shapes (which algorithm wins, how times scale with each parameter)
are what is being reproduced.  EXPERIMENTS.md records the mapping.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the `workloads` helper importable regardless of the pytest rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))


@pytest.fixture(scope="session")
def quick_bench_payload(tmp_path_factory):
    """One ``repro bench --quick`` run shared by the harness smoke tests.

    Runs the seconds-scale smoke profile of the bench-regression harness
    (see PERFORMANCE.md) — the quick workload matrix: IND, ANTI and the
    IIP real-data stand-in — and returns ``(payload, output_path)``;
    collected by the plain tier-1 ``pytest`` run, so the harness itself
    cannot rot.
    """
    from repro.experiments.perf import run_bench

    output = tmp_path_factory.mktemp("bench") / "BENCH_arsp.json"
    payload = run_bench(profile="quick", output_path=str(output))
    return payload, output
