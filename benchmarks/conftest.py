"""Shared setup for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  The paper's
workloads (m = 16K objects, cnt = 400 instances per object) are far beyond
what the pure-Python implementation can time in a benchmark run, so the
sweeps here use scaled-down sizes with the same *relative* structure; the
series shapes (which algorithm wins, how times scale with each parameter)
are what is being reproduced.  EXPERIMENTS.md records the mapping.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make the `workloads` helper importable regardless of the pytest rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))
