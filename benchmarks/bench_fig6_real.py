"""Figure 6: running time and ARSP size on the (simulated) real datasets.

Paper: IIP / CAR / NBA with varying sample fraction m%, dimensionality d and
constraint count c.  Scaled-down sweeps: m% in {50, 100} for every dataset,
d in {2, 3, 4} and c in {1, 3} for NBA.  Expected shapes: on IIP every object
has total probability below one, so B&B degenerates towards LOOP; CAR and
NBA behave like synthetic data with a large region length because of their
high per-object variance.
"""

import numpy as np
import pytest

from repro.algorithms import get_algorithm
from repro.core.arsp import arsp_size
from repro.data.constraints import weak_ranking_constraints
from workloads import BENCH_SEED, bench_real_dataset, run_once

ALGORITHMS = ["loop", "kdtt+", "bnb"]


def sample_objects(dataset, percent, seed=BENCH_SEED):
    if percent >= 100:
        return dataset
    rng = np.random.default_rng(seed)
    count = max(2, int(round(dataset.num_objects * percent / 100.0)))
    chosen = rng.choice(dataset.num_objects, size=count, replace=False)
    return dataset.subset(sorted(int(i) for i in chosen))


@pytest.mark.parametrize("name", ["IIP", "CAR", "NBA"])
@pytest.mark.parametrize("percent", [50, 100])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig6_vary_m(benchmark, algorithm, name, percent):
    dataset = sample_objects(bench_real_dataset(name), percent)
    constraints = weak_ranking_constraints(dataset.dimension)
    implementation = get_algorithm(algorithm)
    result = run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["dataset"] = name
    benchmark.extra_info["m_percent"] = percent
    benchmark.extra_info["num_instances"] = dataset.num_instances
    benchmark.extra_info["arsp_size"] = arsp_size(result)


@pytest.mark.parametrize("d", [2, 3, 4])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig6_nba_vary_d(benchmark, algorithm, d):
    dataset = bench_real_dataset("NBA").project(list(range(d)))
    constraints = weak_ranking_constraints(d)
    implementation = get_algorithm(algorithm)
    result = run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["d"] = d
    benchmark.extra_info["arsp_size"] = arsp_size(result)


@pytest.mark.parametrize("c", [1, 3])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig6_nba_vary_c(benchmark, algorithm, c):
    dataset = bench_real_dataset("NBA").project([0, 1, 2, 3])
    constraints = weak_ranking_constraints(4, c)
    implementation = get_algorithm(algorithm)
    result = run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["c"] = c
    benchmark.extra_info["arsp_size"] = arsp_size(result)
