"""Figure 5(a)-(c): running time and ARSP size vs. object cardinality m.

Paper series: ENUM (times out beyond toy sizes), LOOP, KDTT, KDTT+, QDTT+,
B&B on IND / ANTI / CORR synthetic data, m from 2K to 64K.  Scaled-down
sweep: m in {64, 128, 256}.  Expected shape: all proposed algorithms beat
LOOP by a wide margin; B&B is strongest on IND/ANTI; the tree-traversal
variants profit from early pruning on CORR; ENUM is only feasible on a toy
instance.
"""

import pytest

from repro.algorithms import get_algorithm
from repro.core.arsp import arsp_size
from workloads import bench_constraints, bench_dataset, run_once

ALGORITHMS = ["loop", "kdtt", "kdtt+", "qdtt+", "bnb"]
M_VALUES = [64, 128, 256]
DISTRIBUTIONS = ["IND", "ANTI", "CORR"]


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("m", M_VALUES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_vary_m(benchmark, algorithm, m, distribution):
    dataset = bench_dataset(num_objects=m, distribution=distribution)
    constraints = bench_constraints()
    implementation = get_algorithm(algorithm)
    result = run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["m"] = m
    benchmark.extra_info["distribution"] = distribution
    benchmark.extra_info["num_instances"] = dataset.num_instances
    benchmark.extra_info["arsp_size"] = arsp_size(result)


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_fig5_enum_toy_instance(benchmark, distribution):
    """ENUM is exponential: it only completes on a toy instance (the paper
    reports INF for every plotted size)."""
    dataset = bench_dataset(num_objects=10, max_instances=3,
                            distribution=distribution)
    constraints = bench_constraints()
    implementation = get_algorithm("enum")
    result = run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["m"] = 10
    benchmark.extra_info["distribution"] = distribution
    benchmark.extra_info["arsp_size"] = arsp_size(result)
