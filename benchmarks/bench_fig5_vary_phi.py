"""Figure 5(m)-(o): running time and ARSP size vs. incomplete fraction φ.

Paper: φ from 0% to 80%.  Scaled-down sweep: φ in {0, 0.2, 0.8} on IND.
Expected shape: the more objects with total probability below one, the fewer
instances have zero rskyline probability, so both the ARSP size and the
running times grow; B&B suffers most because fewer objects enter its pruning
set.
"""

import pytest

from repro.algorithms import get_algorithm
from repro.core.arsp import arsp_size
from workloads import bench_constraints, bench_dataset, run_once

ALGORITHMS = ["loop", "kdtt+", "qdtt+", "bnb"]
PHI_VALUES = [0.0, 0.2, 0.8]


@pytest.mark.parametrize("phi", PHI_VALUES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_vary_phi(benchmark, algorithm, phi):
    dataset = bench_dataset(incomplete_fraction=phi)
    constraints = bench_constraints()
    implementation = get_algorithm(algorithm)
    result = run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["phi"] = phi
    benchmark.extra_info["arsp_size"] = arsp_size(result)
