"""Figure 4: per-vertex score distributions of selected players.

The paper's boxplots contrast a player with consistently strong scores
against one with a strong average but large variance.  The benchmark times
the score-distribution computation for the top Table-I players and prints
the five-number summaries (the textual form of the boxplots).
"""

import pytest

from repro.data.constraints import weak_ranking_constraints
from repro.experiments.effectiveness import (rskyline_probability_ranking,
                                             score_distributions)
from workloads import bench_real_dataset, run_once


@pytest.fixture(scope="module")
def nba_3d():
    return bench_real_dataset("NBA").project([0, 1, 2])


def test_fig4_score_distributions(benchmark, nba_3d):
    constraints = weak_ranking_constraints(3)
    rows = rskyline_probability_ranking(nba_3d, constraints, top_k=4)
    object_ids = [row.object_id for row in rows]
    summaries = run_once(benchmark, score_distributions, nba_3d, constraints,
                         object_ids)
    print()
    for row in rows:
        print("%s (Pr_rsky = %.3f)" % (row.label, row.probability))
        for vertex, summary in enumerate(summaries[row.object_id]):
            print("  vertex %d: min=%.1f q1=%.1f median=%.1f q3=%.1f "
                  "max=%.1f mean=%.1f"
                  % (vertex, summary["min"], summary["q1"], summary["median"],
                     summary["q3"], summary["max"], summary["mean"]))
    benchmark.extra_info["players"] = [row.label for row in rows]
