"""Figure 7: the specialised DUAL-MS (d = 2) against KDTT+ on IIP.

Paper: query time of DUAL-MS beats KDTT+ once the index is built, but its
preprocessing time (and memory) is orders of magnitude larger — that
asymmetry is the point of the figure.  Scaled-down sweep: IIP samples of
{50%, 100%} of 600 records, ratio range [0.5, 2].
"""

import numpy as np
import pytest

from repro.algorithms.dual2d import Dual2DIndex
from repro.algorithms.kdtree_traversal import kdtree_traversal_arsp
from repro.core.arsp import arsp_size
from repro.core.preference import WeightRatioConstraints
from workloads import BENCH_SEED, bench_real_dataset, run_once

RATIO = WeightRatioConstraints([(0.5, 2.0)])
PERCENTS = [50, 100]

_INDEX_CACHE = {}


def iip_sample(percent):
    dataset = bench_real_dataset("IIP")
    if percent >= 100:
        return dataset
    rng = np.random.default_rng(BENCH_SEED)
    count = max(2, int(round(dataset.num_objects * percent / 100.0)))
    chosen = rng.choice(dataset.num_objects, size=count, replace=False)
    return dataset.subset(sorted(int(i) for i in chosen))


@pytest.mark.parametrize("percent", PERCENTS)
def test_fig7_dual_ms_preprocessing(benchmark, percent):
    dataset = iip_sample(percent)
    index = run_once(benchmark, Dual2DIndex, dataset)
    _INDEX_CACHE[percent] = index
    benchmark.extra_info["m_percent"] = percent
    benchmark.extra_info["num_instances"] = dataset.num_instances


@pytest.mark.parametrize("percent", PERCENTS)
def test_fig7_dual_ms_query(benchmark, percent):
    index = _INDEX_CACHE.get(percent) or Dual2DIndex(iip_sample(percent))
    result = run_once(benchmark, index.query, RATIO)
    benchmark.extra_info["m_percent"] = percent
    benchmark.extra_info["arsp_size"] = arsp_size(result)


@pytest.mark.parametrize("percent", PERCENTS)
def test_fig7_kdtt_plus(benchmark, percent):
    dataset = iip_sample(percent)
    result = run_once(benchmark, kdtree_traversal_arsp, dataset, RATIO)
    benchmark.extra_info["m_percent"] = percent
    benchmark.extra_info["arsp_size"] = arsp_size(result)
