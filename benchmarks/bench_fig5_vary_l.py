"""Figure 5(j)-(l): running time and ARSP size vs. object region length l.

Paper: l from 0.1 to 0.6.  Scaled-down sweep: l in {0.1, 0.3, 0.5} on IND.
Expected shape: larger regions mean fewer instances dominated by an entire
object, so the ARSP size and every running time grow; B&B is the most
sensitive because both its pruning set and its aggregated R-tree queries
degrade.
"""

import pytest

from repro.algorithms import get_algorithm
from repro.core.arsp import arsp_size
from workloads import bench_constraints, bench_dataset, run_once

ALGORITHMS = ["loop", "kdtt+", "qdtt+", "bnb"]
L_VALUES = [0.1, 0.3, 0.5]


@pytest.mark.parametrize("l", L_VALUES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_vary_l(benchmark, algorithm, l):
    dataset = bench_dataset(region_length=l)
    constraints = bench_constraints()
    implementation = get_algorithm(algorithm)
    result = run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["l"] = l
    benchmark.extra_info["arsp_size"] = arsp_size(result)
