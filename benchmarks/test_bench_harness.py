"""Tier-1 smoke test for the ``repro bench`` regression harness.

Unlike the ``bench_*`` figure reproductions (which need
``pytest --benchmark-only`` and minutes of runtime), this file is collected
by the plain tier-1 ``pytest`` run: it executes the ``quick`` profile of
the harness end to end — every registered algorithm on the quick workload
matrix (IND, ANTI and the IIP real-data stand-in), parity checks, JSON
output — in a couple of seconds.  The *full* six-workload matrix rides
behind the ``bench`` marker (``pytest -m bench``).
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms.registry import (PARALLEL_ALGORITHMS, list_algorithms,
                                       supports_workers)
from repro.experiments.perf import (EXTRA_PATHS, HIT_RATE_TOLERANCE,
                                    PROFILES, SCHEMA, SCHEMA_V1,
                                    SCHEMA_V2, SCHEMA_V3, SCHEMA_V4,
                                    SCHEMA_V5, SCHEMA_V6, SCHEMA_V7,
                                    compare_payloads,
                                    format_bench, format_compare, load_bench,
                                    run_bench, upgrade_payload)
from repro.experiments.workloads import (VARIANTS, available_workloads,
                                         variant_for_algorithm)


def test_quick_profile_covers_the_smoke_matrix(quick_bench_payload):
    """The tier-1 smoke matrix includes a non-IND and a real-data cell."""
    payload, _ = quick_bench_payload
    assert payload["schema"] == SCHEMA
    assert payload["profile"] == "quick"
    assert payload["workload_axis"] == ["ind", "anti", "iip"]
    assert sorted(payload["matrix"]) == sorted(payload["workload_axis"])
    kinds = {section["kind"] for section in payload["matrix"].values()}
    assert kinds == {"synthetic", "real"}


def test_every_section_times_every_algorithm(quick_bench_payload):
    payload, _ = quick_bench_payload
    assert payload["workers"] == 1
    for workload_name, section in payload["matrix"].items():
        assert sorted(section["algorithms"]) == list_algorithms()
        assert sorted(section["datasets"]) == sorted(VARIANTS)
        for name, entry in section["algorithms"].items():
            cell = (workload_name, name)
            assert entry["variant"] == variant_for_algorithm(name), cell
            assert entry["variant"] in section["datasets"], cell
            assert entry["repeats"] == PROFILES["quick"].repeats, cell
            assert len(entry["runs_s"]) == entry["repeats"], cell
            assert entry["min_s"] <= entry["median_s"], cell
            assert entry["arsp_size"] >= 0, cell
            assert isinstance(entry["phases_s"], dict), cell
            assert entry["workers"] == 1, cell


def test_phase_split_is_recorded_for_the_annotated_algorithms(
        quick_bench_payload):
    """B&B and DUAL report their index/query split in every cell."""
    payload, _ = quick_bench_payload
    for workload_name, section in payload["matrix"].items():
        for name in ("bnb", "dual"):
            phases = section["algorithms"][name]["phases_s"]
            cell = (workload_name, name)
            assert set(phases) == {"index", "query"}, cell
            total = section["algorithms"][name]["median_s"]
            assert phases["index"] + phases["query"] <= total * 1.5, cell


def test_every_cell_is_parity_checked(quick_bench_payload):
    payload, _ = quick_bench_payload
    assert payload["reference_algorithm"] == "kdtt+"
    mismatches = {(workload_name, name): entry.get("parity")
                  for workload_name, section in payload["matrix"].items()
                  for name, entry in section["algorithms"].items()
                  if entry.get("parity") != "ok"}
    assert not mismatches


def test_quick_profile_covers_extra_paths(quick_bench_payload):
    """The eclipse and continuous hot paths ride along in ``extras``."""
    payload, _ = quick_bench_payload
    assert sorted(payload["extras"]) == sorted(EXTRA_PATHS)
    for name, entry in payload["extras"].items():
        assert entry["repeats"] == PROFILES["quick"].repeats
        assert len(entry["runs_s"]) == entry["repeats"]
        assert entry["min_s"] <= entry["median_s"], name
        assert entry["workload"] in payload["extra_workloads"], name
        assert entry["result_size"] >= 0, name
    for name in ("eclipse-quad", "eclipse-dual-s"):
        assert payload["extras"][name]["parity"] == "ok", name


def test_json_output_round_trips(quick_bench_payload):
    """The v2 schema survives the write → load_bench → compare loop."""
    payload, output = quick_bench_payload
    on_disk = json.loads(output.read_text(encoding="utf-8"))
    assert on_disk == json.loads(json.dumps(payload))
    assert load_bench(str(output)) == on_disk


def test_v1_payloads_are_upgraded():
    v1 = {
        "schema": SCHEMA_V1,
        "profile": "default",
        "reference_algorithm": "kdtt+",
        "workloads": {
            "synthetic-wr": {"constraints": "WR(c=3)", "num_objects": 192,
                             "num_instances": 500, "dimension": 4},
            "eclipse-ind": {"num_points": 1024, "dimension": 3},
        },
        "algorithms": {
            "kdtt+": {"workload": "synthetic-wr", "repeats": 5,
                      "runs_s": [0.01], "median_s": 0.01, "min_s": 0.01,
                      "arsp_size": 39, "parity": "ok"},
        },
        "extras": {
            "eclipse-quad": {"workload": "eclipse-ind", "repeats": 5,
                             "runs_s": [0.02], "median_s": 0.02,
                             "min_s": 0.02, "result_size": 3,
                             "parity": "ok"},
        },
    }
    upgraded = upgrade_payload(v1)
    assert upgraded["schema"] == SCHEMA
    assert upgraded["workload_axis"] == ["ind"]
    section = upgraded["matrix"]["ind"]
    assert section["kind"] == "synthetic"
    assert section["algorithms"]["kdtt+"]["variant"] == "wr"
    assert "workload" not in section["algorithms"]["kdtt+"]
    assert section["datasets"]["wr"]["num_objects"] == 192
    assert upgraded["extras"] == v1["extras"]
    assert upgraded["extra_workloads"] == {"eclipse-ind":
                                           v1["workloads"]["eclipse-ind"]}
    # The v1 path rides the v2 upgrade too: phase fields appear empty.
    assert section["algorithms"]["kdtt+"]["phases_s"] == {}
    # Idempotent on current payloads, loud on unknown schemas.
    assert upgrade_payload(upgraded) is upgraded
    with pytest.raises(ValueError, match="schema"):
        upgrade_payload({"schema": "repro-bench/99"})


def test_v2_payloads_gain_empty_phase_fields():
    v2 = {
        "schema": SCHEMA_V2,
        "profile": "default",
        "workload_axis": ["ind"],
        "matrix": {"ind": {
            "kind": "synthetic",
            "description": "synthetic, independent centres",
            "datasets": {"wr": {"num_objects": 192}},
            "algorithms": {
                "kdtt+": {"variant": "wr", "repeats": 5, "runs_s": [0.01],
                          "median_s": 0.01, "min_s": 0.01, "arsp_size": 39,
                          "parity": "ok"},
            },
        }},
        "extras": {},
        "extra_workloads": {},
    }
    upgraded = upgrade_payload(v2)
    assert upgraded["schema"] == SCHEMA
    entry = upgraded["matrix"]["ind"]["algorithms"]["kdtt+"]
    assert entry["phases_s"] == {}
    # The original payload is not mutated by the upgrade.
    assert "phases_s" not in v2["matrix"]["ind"]["algorithms"]["kdtt+"]


def test_v3_payloads_gain_workers_fields():
    """The v3 → v4 upgrade path: serial ``workers`` fields everywhere."""
    v3 = {
        "schema": SCHEMA_V3,
        "profile": "default",
        "workload_axis": ["ind"],
        "matrix": {"ind": {
            "kind": "synthetic",
            "description": "synthetic, independent centres",
            "datasets": {"wr": {"num_objects": 192}},
            "algorithms": {
                "kdtt+": {"variant": "wr", "repeats": 5, "runs_s": [0.01],
                          "median_s": 0.01, "min_s": 0.01, "arsp_size": 39,
                          "phases_s": {}, "parity": "ok"},
            },
        }},
        "extras": {},
        "extra_workloads": {},
    }
    upgraded = upgrade_payload(v3)
    assert upgraded["schema"] == SCHEMA
    assert upgraded["workers"] == 1
    entry = upgraded["matrix"]["ind"]["algorithms"]["kdtt+"]
    assert entry["workers"] == 1
    # The original payload is not mutated by the upgrade.
    assert "workers" not in v3
    assert "workers" not in v3["matrix"]["ind"]["algorithms"]["kdtt+"]
    # The older upgrade chains ride through to v4 as well.
    assert upgrade_payload({**v3, "schema": SCHEMA_V2})["workers"] == 1


@pytest.mark.parallel
def test_workers_run_shards_the_ported_cells():
    """``repro bench --workers N``: ported algorithms record N, serial-only
    algorithms record 1, and every cell stays parity-checked against the
    serial reference."""
    payload = run_bench(profile="quick", workloads=["ind"],
                        algorithms=["loop", "kdtt+", "dual", "bnb", "enum"],
                        repeats=1, workers=2)
    assert payload["workers"] == 2
    section = payload["matrix"]["ind"]
    for name, entry in section["algorithms"].items():
        expected = 2 if supports_workers(name) else 1
        assert entry["workers"] == expected, name
        assert entry["parity"] == "ok", name
    assert not supports_workers("enum")
    assert PARALLEL_ALGORITHMS >= {"loop", "kdtt+", "dual", "bnb"}
    assert ", workers=2" in format_bench(payload)


def test_compare_annotates_worker_count_mismatches(quick_bench_payload):
    """Deltas between runs at different worker counts are not code
    regressions; the compare calls the mismatch out instead of hiding it."""
    payload, _ = quick_bench_payload
    sharded = json.loads(json.dumps(payload))
    sharded["workers"] = 4
    sharded["matrix"]["ind"]["algorithms"]["kdtt+"]["workers"] = 4
    lines, _ = compare_payloads(sharded, payload, threshold=1000.0)
    assert any("WARNING" in line and "workers=4" in line for line in lines)
    assert any("[workers 4 -> 1]" in line for line in lines
               if "ind/kdtt+" in line)
    # Same-workers comparisons stay unannotated.
    lines, _ = compare_payloads(payload, payload)
    assert not any("WARNING" in line or "[workers" in line
                   for line in lines)


def test_compare_min_of_runs_statistic(quick_bench_payload):
    """``--compare-stat min`` gates on the min over runs, not the median."""
    payload, _ = quick_bench_payload
    shrunk = json.loads(json.dumps(payload))
    entry = shrunk["matrix"]["ind"]["algorithms"]["kdtt+"]
    # Baseline whose *min* is 1000x faster while its median is unchanged:
    # only the min statistic may flag this.
    entry["min_s"] /= 1000.0
    _, median_regressions = compare_payloads(shrunk, payload, threshold=2.0,
                                             statistic="median")
    assert "ind/kdtt+" not in median_regressions
    _, min_regressions = compare_payloads(shrunk, payload, threshold=2.0,
                                          statistic="min")
    assert "ind/kdtt+" in min_regressions
    with pytest.raises(ValueError, match="unknown statistic"):
        compare_payloads(payload, payload, statistic="p99")


def test_compare_per_phase_thresholds(quick_bench_payload):
    """A phase regression inside a stable headline median trips the gate
    only when the per-phase mode is enabled."""
    payload, _ = quick_bench_payload
    shrunk = json.loads(json.dumps(payload))
    phases = shrunk["matrix"]["ind"]["algorithms"]["bnb"]["phases_s"]
    assert "index" in phases
    phases["index"] /= 1000.0  # the current index phase now looks 1000x slower
    _, headline_only = compare_payloads(shrunk, payload, threshold=2.0)
    assert not any(":" in cell for cell in headline_only)
    lines, regressions = compare_payloads(shrunk, payload, threshold=2.0,
                                          phase_threshold=2.0)
    assert "ind/bnb:index" in regressions
    assert any("phase index" in line for line in lines)
    # Phases missing from the baseline are reported but never flagged.
    del shrunk["matrix"]["ind"]["algorithms"]["bnb"]["phases_s"]["index"]
    lines, regressions = compare_payloads(shrunk, payload, threshold=2.0,
                                          phase_threshold=2.0)
    assert "ind/bnb:index" not in regressions
    assert any("phase index" in line and "no baseline" in line
               for line in lines)
    with pytest.raises(ValueError, match="phase threshold"):
        compare_payloads(payload, payload, phase_threshold=0.0)
    text, ok = format_compare(payload, payload, phase_threshold=1.5)
    assert ok and "per-phase 1.50x" in text


def test_cli_compare_stat_and_phase_threshold(quick_bench_payload, capsys):
    """The CI-friendly compare modes are reachable from the CLI."""
    from repro.cli import main

    payload, output = quick_bench_payload
    # The huge headline threshold keeps this a plumbing test: re-timed
    # wall clock against the session baseline must not flake the gate on
    # a loaded or single-CPU runner.
    argv = ["bench", "--quick", "--repeats", "1", "--algorithms", "kdtt+",
            "--workloads", "ind", "--output", "-", "--compare", str(output),
            "--regression-threshold", "1000000", "--compare-stat", "min",
            "--phase-regression-threshold", "1000000"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "comparison against baseline (min," in out
    # A vanishing per-phase threshold flags the annotated phases.
    argv_tight = argv[:-1] + ["0.000001"]
    argv_tight[argv_tight.index("kdtt+")] = "bnb"
    assert main(argv_tight) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_compare_flags_regressions_and_only_regressions(quick_bench_payload):
    """Self-comparison is clean; a shrunk baseline trips the gate."""
    payload, _ = quick_bench_payload
    lines, regressions = compare_payloads(payload, payload)
    assert not regressions
    cells = sum(len(section["algorithms"])
                for section in payload["matrix"].values())
    serve_modes = sum(1 for mode in ("cold", "warm")
                      if mode in payload["serve"])
    stream_lines = sum(1 for mode in ("cold", "incremental", "warm")
                       if mode in payload["stream"])
    warm_entry = payload["stream"].get("warm") or {}
    for rate_field in ("hit_rate", "post_delta_hit_rate"):
        if rate_field in warm_entry:
            stream_lines += 1  # each rate gate prints its own line
    assert len(lines) == (cells + len(payload["extras"]) + serve_modes +
                          stream_lines)

    shrunk = json.loads(json.dumps(payload))
    shrunk["matrix"]["ind"]["algorithms"]["kdtt+"]["median_s"] /= 1000.0
    _, regressions = compare_payloads(shrunk, payload, threshold=2.0)
    assert regressions == ["ind/kdtt+"]
    text, ok = format_compare(shrunk, payload, threshold=2.0)
    assert not ok and "REGRESSION" in text and "ind/kdtt+" in text
    text, ok = format_compare(payload, payload)
    assert ok and "no regressions" in text


def test_compare_handles_missing_baseline_cells(quick_bench_payload):
    """New algorithms / workloads are reported but never flagged."""
    payload, _ = quick_bench_payload
    baseline = json.loads(json.dumps(payload))
    del baseline["matrix"]["ind"]["algorithms"]["kdtt+"]
    del baseline["matrix"]["anti"]
    lines, regressions = compare_payloads(baseline, payload, threshold=0.0001)
    assert "ind/kdtt+" not in regressions
    assert not any(cell.startswith("anti/") for cell in regressions)
    assert any("no baseline" in line for line in lines)
    with pytest.raises(ValueError, match="threshold"):
        compare_payloads(payload, payload, threshold=0.0)


def test_cli_compare_exit_codes(quick_bench_payload, tmp_path, capsys):
    """``repro bench --compare`` prints deltas and gates on the threshold."""
    from repro.cli import main

    payload, output = quick_bench_payload
    argv = ["bench", "--quick", "--repeats", "1", "--algorithms", "kdtt+",
            "--workloads", "ind", "--output", "-",
            "--compare", str(output)]
    assert main(argv) == 0
    assert "comparison against baseline" in capsys.readouterr().out
    # An absurdly tight threshold turns any nonzero delta into a failure.
    assert main(argv + ["--regression-threshold", "0.000001"]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_format_bench_mentions_every_cell(quick_bench_payload):
    payload, _ = quick_bench_payload
    text = format_bench(payload)
    for workload_name, section in payload["matrix"].items():
        assert "[%s]" % workload_name in text
        for name in section["algorithms"]:
            assert name in text
    for name in payload["extras"]:
        assert name in text


def test_algorithm_and_workload_subset_and_no_check():
    payload = run_bench(profile="quick", algorithms=["kdtt+", "dual"],
                        workloads=["anti"], repeats=1, check=False)
    assert payload["workload_axis"] == ["anti"]
    section = payload["matrix"]["anti"]
    assert sorted(section["algorithms"]) == ["dual", "kdtt+"]
    assert payload["reference_algorithm"] is None
    for entry in section["algorithms"].values():
        assert "parity" not in entry
    # An explicit subset is a request to time just that subset.
    assert payload["extras"] == {}


def test_axes_are_canonicalized_and_validated_up_front():
    """Aliases land on their matching variant, typos fail before timing,
    duplicates collapse, and empty selections mean the defaults."""
    payload = run_bench(profile="quick", algorithms=["DUALMS", "kdtt+"],
                        workloads=["ANTI", "anti"], repeats=1)
    assert payload["workload_axis"] == ["anti"]
    section = payload["matrix"]["anti"]
    assert sorted(section["algorithms"]) == ["dual-ms", "kdtt+"]
    assert section["algorithms"]["dual-ms"]["variant"] == "ratio-2d"
    assert section["algorithms"]["dual-ms"]["parity"] == "ok"
    with pytest.raises(KeyError, match="unknown ARSP algorithm"):
        run_bench(profile="quick", algorithms=["kdtt+", "kdt"], repeats=1)
    with pytest.raises(KeyError, match="unknown workload"):
        run_bench(profile="quick", workloads=["ind", "tpch"], repeats=1)
    empty = run_bench(profile="quick", algorithms=["kdtt+"], workloads=[],
                      repeats=1, check=False)
    assert empty["workload_axis"] == list(PROFILES["quick"].workload_names)


@pytest.mark.bench
def test_full_matrix_parity_sweep():
    """Opt-in (``pytest -m bench``): every algorithm on all six workloads
    at the quick scale, every cell parity-checked against KDTT+."""
    payload = run_bench(profile="quick", workloads=available_workloads(),
                        repeats=1)
    assert payload["workload_axis"] == available_workloads()
    for workload_name, section in payload["matrix"].items():
        assert sorted(section["algorithms"]) == list_algorithms()
        for name, entry in section["algorithms"].items():
            assert entry["parity"] == "ok", (workload_name, name)


def test_v4_payloads_gain_execution_fields():
    """The v4 -> v5 upgrade path: empty execution reports everywhere."""
    v4 = {
        "schema": SCHEMA_V4,
        "profile": "default",
        "workers": 2,
        "workload_axis": ["ind"],
        "matrix": {"ind": {
            "kind": "synthetic",
            "description": "synthetic, independent centres",
            "datasets": {"wr": {"num_objects": 192}},
            "algorithms": {
                "kdtt+": {"variant": "wr", "repeats": 5, "workers": 2,
                          "runs_s": [0.01], "median_s": 0.01, "min_s": 0.01,
                          "arsp_size": 39, "phases_s": {}, "parity": "ok"},
            },
        }},
        "extras": {},
        "extra_workloads": {},
    }
    upgraded = upgrade_payload(v4)
    assert upgraded["schema"] == SCHEMA
    assert upgraded["backend"] is None
    entry = upgraded["matrix"]["ind"]["algorithms"]["kdtt+"]
    assert entry["execution"] is None
    # The pre-v5 fields survive untouched and the input is not mutated.
    assert entry["workers"] == 2
    assert "backend" not in v4
    assert "execution" not in v4["matrix"]["ind"]["algorithms"]["kdtt+"]
    # Older schemas ride the whole chain up to v5.
    v3 = {**v4, "schema": SCHEMA_V3}
    del v3["workers"]
    chained = upgrade_payload(v3)
    assert chained["schema"] == SCHEMA
    assert chained["matrix"]["ind"]["algorithms"]["kdtt+"]["execution"] \
        is None


def test_v5_payloads_gain_serve_and_cache_fields():
    """The v5 -> v6 upgrade path: empty serve section, null cache stats."""
    v5 = {
        "schema": SCHEMA_V5,
        "profile": "default",
        "workers": 1,
        "backend": None,
        "workload_axis": ["ind"],
        "matrix": {"ind": {
            "kind": "synthetic",
            "description": "synthetic, independent centres",
            "datasets": {"wr": {"num_objects": 192}},
            "algorithms": {
                "kdtt+": {"variant": "wr", "repeats": 5, "workers": 1,
                          "runs_s": [0.01], "median_s": 0.01, "min_s": 0.01,
                          "arsp_size": 39, "phases_s": {}, "execution": None,
                          "parity": "ok"},
            },
        }},
        "extras": {},
        "extra_workloads": {},
    }
    upgraded = upgrade_payload(v5)
    assert upgraded["schema"] == SCHEMA
    assert upgraded["serve"] == {}
    entry = upgraded["matrix"]["ind"]["algorithms"]["kdtt+"]
    assert entry["cache"] is None
    # The pre-v6 fields survive untouched and the input is not mutated.
    assert entry["execution"] is None
    assert "serve" not in v5
    assert "cache" not in v5["matrix"]["ind"]["algorithms"]["kdtt+"]
    # Older schemas ride the whole chain up to v6.
    v3 = {**v5, "schema": SCHEMA_V3}
    del v3["workers"], v3["backend"]
    chained = upgrade_payload(v3)
    assert chained["schema"] == SCHEMA
    assert chained["serve"] == {}
    assert chained["matrix"]["ind"]["algorithms"]["kdtt+"]["cache"] is None
    # An upgraded payload compares cleanly against a fresh v6 baseline
    # (the serve comparison skips the absent modes instead of crashing).
    _, regressions = compare_payloads(upgraded, upgraded)
    assert not regressions


@pytest.mark.serve
def test_serve_section_measures_warm_vs_cold(quick_bench_payload):
    """The quick profile's serve section: parity-checked, cache-hitting
    warm rounds with a recorded speedup over cold-start rounds."""
    payload, _ = quick_bench_payload
    serve = payload["serve"]
    assert serve, "default bench runs must measure the serve workload"
    assert serve["parity"] == "ok"
    assert serve["queries_per_round"] > 1
    for mode in ("cold", "warm"):
        entry = serve[mode]
        assert len(entry["runs_s"]) == entry["repeats"], mode
        assert entry["min_s"] <= entry["median_s"], mode
    cache = serve["warm"]["cache"]
    assert cache["hits"] > 0, "warm rounds must hit the cross-query cache"
    assert cache["hit_rate"] > 0
    assert serve["speedup"] is not None
    text = format_bench(payload)
    assert "[serve]" in text and "serve-warm" in text
    assert "cache:" in text
    # Serve rounds compare like any other cell between payloads.
    slower = json.loads(json.dumps(payload))
    slower["serve"]["warm"]["median_s"] *= 1000.0
    baseline = json.loads(json.dumps(payload))
    lines, regressions = compare_payloads(baseline, slower, threshold=2.0)
    assert "serve/warm" in regressions
    assert any("serve/warm" in line for line in lines)


@pytest.mark.serve
def test_serve_daemon_smoke():
    """Daemon lifecycle smoke: start ``repro serve``, query it over TCP,
    shut it down over the protocol, and get a clean exit."""
    import asyncio
    import os
    import subprocess
    import sys
    from pathlib import Path

    from repro.core.arsp import compute_arsp
    from repro.core.preference import WeightRatioConstraints
    from repro.data.synthetic import (SyntheticConfig,
                                      generate_uncertain_dataset)
    from repro.serve import ServeClient

    src = str(Path(__file__).resolve().parents[1] / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--objects", "20",
         "--instances", "3", "--dimension", "3", "--seed", "11",
         "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=dict(os.environ, PYTHONPATH=src))
    try:
        address = None
        for _ in range(10):
            line = process.stdout.readline()
            assert line, "daemon exited before announcing its port: %s" % (
                process.stderr.read(),)
            if "listening on" in line:
                address = line.rsplit("listening on", 1)[1].strip()
                break
        assert address is not None
        host, port = address.rsplit(":", 1)
        constraints = WeightRatioConstraints([(0.5, 2.0), (0.5, 2.0)])

        async def round_trip():
            client = await ServeClient.connect(host, int(port))
            first = await client.query(constraints=constraints)
            second = await client.query(constraints=constraints)
            await client.shutdown()
            await client.close()
            return first, second

        first, second = asyncio.run(round_trip())
        dataset = generate_uncertain_dataset(SyntheticConfig(
            num_objects=20, max_instances=3, dimension=3, seed=11))
        assert first["result"] == dict(compute_arsp(dataset, constraints))
        assert second["cached"] is True
        assert process.wait(timeout=30) == 0
        remaining = process.stdout.read()
        assert "answered 2 queries" in remaining
    finally:
        if process.poll() is None:
            process.kill()
        process.stdout.close()
        process.stderr.close()


def test_v6_payloads_gain_an_empty_stream_section():
    """The v6 -> v7 upgrade path: pre-scenario payloads read cleanly and
    compare without tripping the stream hit-rate gate."""
    v6 = {
        "schema": SCHEMA_V6,
        "profile": "default",
        "workers": 1,
        "backend": None,
        "workload_axis": ["ind"],
        "matrix": {"ind": {
            "kind": "synthetic",
            "description": "synthetic, independent centres",
            "datasets": {"wr": {"num_objects": 192}},
            "algorithms": {
                "kdtt+": {"variant": "wr", "repeats": 5, "workers": 1,
                          "runs_s": [0.01], "median_s": 0.01, "min_s": 0.01,
                          "arsp_size": 39, "phases_s": {}, "execution": None,
                          "cache": None, "parity": "ok"},
            },
        }},
        "extras": {},
        "extra_workloads": {},
        "serve": {},
    }
    upgraded = upgrade_payload(v6)
    assert upgraded["schema"] == SCHEMA
    assert upgraded["stream"] == {}
    # The input is not mutated, and older schemas ride the whole chain.
    assert "stream" not in v6
    v3 = {**v6, "schema": SCHEMA_V3}
    del v3["workers"], v3["backend"], v3["serve"]
    chained = upgrade_payload(v3)
    assert chained["schema"] == SCHEMA
    assert chained["stream"] == {} and chained["serve"] == {}
    # A v6 baseline has no stream cells or hit rate: reported as missing,
    # never flagged.
    _, regressions = compare_payloads(upgraded, upgraded)
    assert not regressions


def test_v7_payloads_gain_a_post_delta_hit_rate():
    """The v7 -> v8 upgrade path: pre-retention payloads read cleanly,
    their warm stream entry gains ``post_delta_hit_rate: 0.0`` (the v7
    serving layer cleared its cache on every delta, so the rate was
    genuinely zero), and comparing against them gates the new counter."""
    v7 = {
        "schema": SCHEMA_V7,
        "profile": "default",
        "workers": 1,
        "backend": None,
        "workload_axis": ["ind"],
        "matrix": {"ind": {
            "kind": "synthetic",
            "description": "synthetic, independent centres",
            "datasets": {"wr": {"num_objects": 192}},
            "algorithms": {
                "kdtt+": {"variant": "wr", "repeats": 5, "workers": 1,
                          "runs_s": [0.01], "median_s": 0.01, "min_s": 0.01,
                          "arsp_size": 39, "phases_s": {}, "execution": None,
                          "cache": None, "parity": "ok"},
            },
        }},
        "extras": {},
        "extra_workloads": {},
        "serve": {},
        "stream": {
            "workload": {"scenario": "bench-default"},
            "warm": {"runs_s": [0.01], "median_s": 0.01, "min_s": 0.01,
                     "repeats": 1, "hit_rate": 0.25,
                     "cache": {"hits": 3, "misses": 9}, "coalesced": 0},
        },
    }
    upgraded = upgrade_payload(v7)
    assert upgraded["schema"] == SCHEMA
    assert upgraded["stream"]["warm"]["post_delta_hit_rate"] == 0.0
    assert upgraded["stream"]["warm"]["hit_rate"] == 0.25
    # The input is not mutated, and empty stream sections stay empty.
    assert "post_delta_hit_rate" not in v7["stream"]["warm"]
    empty = {**v7, "stream": {}}
    assert upgrade_payload(empty)["stream"] == {}
    # Older schemas ride the whole chain up through the v7 step.
    v3 = {key: value for key, value in v7.items()
          if key not in ("workers", "backend", "serve", "stream")}
    v3["schema"] = SCHEMA_V3
    chained = upgrade_payload(v3)
    assert chained["schema"] == SCHEMA and chained["stream"] == {}
    # Self-comparison of the upgraded payload is clean; a current run
    # whose retention broke back to clear-on-delta ties the 0.0 baseline
    # (never flags), while a baseline with a real rate gates a drop.
    _, regressions = compare_payloads(upgraded, upgraded)
    assert not regressions
    better = json.loads(json.dumps(upgraded))
    better["stream"]["warm"]["post_delta_hit_rate"] = 0.5
    _, regressions = compare_payloads(upgraded, better)
    assert not regressions  # improvements never flag
    _, regressions = compare_payloads(better, upgraded)
    assert regressions == ["stream/warm:post_delta_hit_rate"]


@pytest.mark.stream
def test_stream_section_measures_incremental_and_warm_replays(
        quick_bench_payload):
    """The quick profile's stream section: one deterministic scenario
    replayed cold / incremental / warm, byte-identical fingerprints, σ
    maintenance and cache counters recorded."""
    payload, _ = quick_bench_payload
    stream = payload["stream"]
    assert stream, "default bench runs must measure the stream workload"
    assert stream["parity"] == "ok"
    workload = stream["workload"]
    quick = PROFILES["quick"]
    assert workload["steps"] == quick.stream_steps
    assert workload["queries"] == quick.stream_steps * quick.stream_queries
    assert workload["script_fingerprint"]
    for mode in ("cold", "incremental", "warm"):
        entry = stream[mode]
        assert len(entry["runs_s"]) == entry["repeats"], mode
        assert entry["min_s"] <= entry["median_s"], mode
        # Per-step seconds stand in for runs: one entry per scenario step.
        assert entry["repeats"] == quick.stream_steps, mode
    maintenance = stream["incremental"]["maintenance"]
    assert maintenance["sigma_hits"] > 0
    assert 0.0 < maintenance["copied_fraction"] <= 1.0
    warm = stream["warm"]
    assert warm["cache"]["hits"] > 0
    assert warm["hit_rate"] > 0
    # The PR 10 acceptance criterion: cache entries retained across the
    # per-step deltas serve real post-delta hits (this was structurally
    # zero when apply_delta cleared the cache).
    assert warm["post_delta_hit_rate"] > 0
    assert warm["cache"]["retained"] > 0
    assert warm["cache"]["retained_hits"] > 0
    assert warm["coalesced"] >= 0
    assert stream["speedup"] is not None
    text = format_bench(payload)
    assert "[stream]" in text and "stream-incremental" in text
    assert "sigma:" in text and "hit rate" in text and "post-delta" in text


@pytest.mark.stream
def test_compare_gates_on_stream_hit_rate(quick_bench_payload):
    """A warm hit-rate drop beyond the tolerance flags even when every
    timing cell is clean; per-step slowdowns gate like any other cell."""
    payload, _ = quick_bench_payload
    degraded = json.loads(json.dumps(payload))
    degraded["stream"]["warm"]["hit_rate"] = max(
        0.0, payload["stream"]["warm"]["hit_rate"] - 2 * HIT_RATE_TOLERANCE)
    lines, regressions = compare_payloads(payload, degraded,
                                          threshold=1000.0)
    assert regressions == ["stream/warm:hit_rate"]
    assert any("stream/warm:hit_rate" in line and "REGRESSION" in line
               for line in lines)
    # A drop inside the tolerance band stays green.
    wobble = json.loads(json.dumps(payload))
    wobble["stream"]["warm"]["hit_rate"] = max(
        0.0, payload["stream"]["warm"]["hit_rate"] -
        HIT_RATE_TOLERANCE / 2.0)
    _, regressions = compare_payloads(payload, wobble, threshold=1000.0)
    assert not regressions
    # Retention has its own gate: a run whose repair path broke back to
    # clear-on-delta zeroes the post-delta rate and flags, even with
    # every timing cell and the overall hit rate clean.
    dropped = json.loads(json.dumps(payload))
    dropped["stream"]["warm"]["post_delta_hit_rate"] = 0.0
    _, regressions = compare_payloads(payload, dropped, threshold=1000.0)
    assert regressions == ["stream/warm:post_delta_hit_rate"]
    # Stream timing cells ride the ordinary regression gate.
    slower = json.loads(json.dumps(payload))
    slower["stream"]["incremental"]["median_s"] *= 1000.0
    _, regressions = compare_payloads(payload, slower, threshold=2.0)
    assert "stream/incremental" in regressions


@pytest.mark.parallel
@pytest.mark.faults
def test_bench_cell_records_crash_recovery(monkeypatch):
    """Crash-recovery smoke: with ``REPRO_FAULTS`` injecting a worker
    crash, the bench cell still times the run, stays parity-checked, and
    records the recovery in its execution summary."""
    monkeypatch.setenv("REPRO_FAULTS", "crash:shard=1,attempt=1")
    payload = run_bench(profile="quick", workloads=["ind"],
                        algorithms=["kdtt+"], repeats=1, workers=2,
                        backend="process")
    assert payload["backend"] == "process"
    entry = payload["matrix"]["ind"]["algorithms"]["kdtt+"]
    assert entry["parity"] == "ok"
    execution = entry["execution"]
    assert execution is not None and not execution["clean"]
    assert execution["recovered_shards"] == [1]
    assert execution["pool_rebuilds"] >= 1
    assert execution["serial_fallback_shards"] == []
    assert "[exec:" in format_bench(payload)
