"""Tier-1 smoke test for the ``repro bench`` regression harness.

Unlike the ``bench_*`` figure reproductions (which need
``pytest --benchmark-only`` and minutes of runtime), this file is collected
by the plain tier-1 ``pytest`` run: it executes the ``quick`` profile of
the harness end to end — every registered algorithm on the quick workload
matrix (IND, ANTI and the IIP real-data stand-in), parity checks, JSON
output — in a couple of seconds.  The *full* six-workload matrix rides
behind the ``bench`` marker (``pytest -m bench``).
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms.registry import list_algorithms
from repro.experiments.perf import (EXTRA_PATHS, PROFILES, SCHEMA, SCHEMA_V1,
                                    SCHEMA_V2, compare_payloads, format_bench,
                                    format_compare, load_bench, run_bench,
                                    upgrade_payload)
from repro.experiments.workloads import (VARIANTS, available_workloads,
                                         variant_for_algorithm)


def test_quick_profile_covers_the_smoke_matrix(quick_bench_payload):
    """The tier-1 smoke matrix includes a non-IND and a real-data cell."""
    payload, _ = quick_bench_payload
    assert payload["schema"] == SCHEMA
    assert payload["profile"] == "quick"
    assert payload["workload_axis"] == ["ind", "anti", "iip"]
    assert sorted(payload["matrix"]) == sorted(payload["workload_axis"])
    kinds = {section["kind"] for section in payload["matrix"].values()}
    assert kinds == {"synthetic", "real"}


def test_every_section_times_every_algorithm(quick_bench_payload):
    payload, _ = quick_bench_payload
    for workload_name, section in payload["matrix"].items():
        assert sorted(section["algorithms"]) == list_algorithms()
        assert sorted(section["datasets"]) == sorted(VARIANTS)
        for name, entry in section["algorithms"].items():
            cell = (workload_name, name)
            assert entry["variant"] == variant_for_algorithm(name), cell
            assert entry["variant"] in section["datasets"], cell
            assert entry["repeats"] == PROFILES["quick"].repeats, cell
            assert len(entry["runs_s"]) == entry["repeats"], cell
            assert entry["min_s"] <= entry["median_s"], cell
            assert entry["arsp_size"] >= 0, cell
            assert isinstance(entry["phases_s"], dict), cell


def test_phase_split_is_recorded_for_the_annotated_algorithms(
        quick_bench_payload):
    """B&B and DUAL report their index/query split in every cell."""
    payload, _ = quick_bench_payload
    for workload_name, section in payload["matrix"].items():
        for name in ("bnb", "dual"):
            phases = section["algorithms"][name]["phases_s"]
            cell = (workload_name, name)
            assert set(phases) == {"index", "query"}, cell
            total = section["algorithms"][name]["median_s"]
            assert phases["index"] + phases["query"] <= total * 1.5, cell


def test_every_cell_is_parity_checked(quick_bench_payload):
    payload, _ = quick_bench_payload
    assert payload["reference_algorithm"] == "kdtt+"
    mismatches = {(workload_name, name): entry.get("parity")
                  for workload_name, section in payload["matrix"].items()
                  for name, entry in section["algorithms"].items()
                  if entry.get("parity") != "ok"}
    assert not mismatches


def test_quick_profile_covers_extra_paths(quick_bench_payload):
    """The eclipse and continuous hot paths ride along in ``extras``."""
    payload, _ = quick_bench_payload
    assert sorted(payload["extras"]) == sorted(EXTRA_PATHS)
    for name, entry in payload["extras"].items():
        assert entry["repeats"] == PROFILES["quick"].repeats
        assert len(entry["runs_s"]) == entry["repeats"]
        assert entry["min_s"] <= entry["median_s"], name
        assert entry["workload"] in payload["extra_workloads"], name
        assert entry["result_size"] >= 0, name
    for name in ("eclipse-quad", "eclipse-dual-s"):
        assert payload["extras"][name]["parity"] == "ok", name


def test_json_output_round_trips(quick_bench_payload):
    """The v2 schema survives the write → load_bench → compare loop."""
    payload, output = quick_bench_payload
    on_disk = json.loads(output.read_text(encoding="utf-8"))
    assert on_disk == json.loads(json.dumps(payload))
    assert load_bench(str(output)) == on_disk


def test_v1_payloads_are_upgraded():
    v1 = {
        "schema": SCHEMA_V1,
        "profile": "default",
        "reference_algorithm": "kdtt+",
        "workloads": {
            "synthetic-wr": {"constraints": "WR(c=3)", "num_objects": 192,
                             "num_instances": 500, "dimension": 4},
            "eclipse-ind": {"num_points": 1024, "dimension": 3},
        },
        "algorithms": {
            "kdtt+": {"workload": "synthetic-wr", "repeats": 5,
                      "runs_s": [0.01], "median_s": 0.01, "min_s": 0.01,
                      "arsp_size": 39, "parity": "ok"},
        },
        "extras": {
            "eclipse-quad": {"workload": "eclipse-ind", "repeats": 5,
                             "runs_s": [0.02], "median_s": 0.02,
                             "min_s": 0.02, "result_size": 3,
                             "parity": "ok"},
        },
    }
    upgraded = upgrade_payload(v1)
    assert upgraded["schema"] == SCHEMA
    assert upgraded["workload_axis"] == ["ind"]
    section = upgraded["matrix"]["ind"]
    assert section["kind"] == "synthetic"
    assert section["algorithms"]["kdtt+"]["variant"] == "wr"
    assert "workload" not in section["algorithms"]["kdtt+"]
    assert section["datasets"]["wr"]["num_objects"] == 192
    assert upgraded["extras"] == v1["extras"]
    assert upgraded["extra_workloads"] == {"eclipse-ind":
                                           v1["workloads"]["eclipse-ind"]}
    # The v1 path rides the v2 upgrade too: phase fields appear empty.
    assert section["algorithms"]["kdtt+"]["phases_s"] == {}
    # Idempotent on current payloads, loud on unknown schemas.
    assert upgrade_payload(upgraded) is upgraded
    with pytest.raises(ValueError, match="schema"):
        upgrade_payload({"schema": "repro-bench/99"})


def test_v2_payloads_gain_empty_phase_fields():
    v2 = {
        "schema": SCHEMA_V2,
        "profile": "default",
        "workload_axis": ["ind"],
        "matrix": {"ind": {
            "kind": "synthetic",
            "description": "synthetic, independent centres",
            "datasets": {"wr": {"num_objects": 192}},
            "algorithms": {
                "kdtt+": {"variant": "wr", "repeats": 5, "runs_s": [0.01],
                          "median_s": 0.01, "min_s": 0.01, "arsp_size": 39,
                          "parity": "ok"},
            },
        }},
        "extras": {},
        "extra_workloads": {},
    }
    upgraded = upgrade_payload(v2)
    assert upgraded["schema"] == SCHEMA
    entry = upgraded["matrix"]["ind"]["algorithms"]["kdtt+"]
    assert entry["phases_s"] == {}
    # The original payload is not mutated by the upgrade.
    assert "phases_s" not in v2["matrix"]["ind"]["algorithms"]["kdtt+"]


def test_compare_flags_regressions_and_only_regressions(quick_bench_payload):
    """Self-comparison is clean; a shrunk baseline trips the gate."""
    payload, _ = quick_bench_payload
    lines, regressions = compare_payloads(payload, payload)
    assert not regressions
    cells = sum(len(section["algorithms"])
                for section in payload["matrix"].values())
    assert len(lines) == cells + len(payload["extras"])

    shrunk = json.loads(json.dumps(payload))
    shrunk["matrix"]["ind"]["algorithms"]["kdtt+"]["median_s"] /= 1000.0
    _, regressions = compare_payloads(shrunk, payload, threshold=2.0)
    assert regressions == ["ind/kdtt+"]
    text, ok = format_compare(shrunk, payload, threshold=2.0)
    assert not ok and "REGRESSION" in text and "ind/kdtt+" in text
    text, ok = format_compare(payload, payload)
    assert ok and "no regressions" in text


def test_compare_handles_missing_baseline_cells(quick_bench_payload):
    """New algorithms / workloads are reported but never flagged."""
    payload, _ = quick_bench_payload
    baseline = json.loads(json.dumps(payload))
    del baseline["matrix"]["ind"]["algorithms"]["kdtt+"]
    del baseline["matrix"]["anti"]
    lines, regressions = compare_payloads(baseline, payload, threshold=0.0001)
    assert "ind/kdtt+" not in regressions
    assert not any(cell.startswith("anti/") for cell in regressions)
    assert any("no baseline" in line for line in lines)
    with pytest.raises(ValueError, match="threshold"):
        compare_payloads(payload, payload, threshold=0.0)


def test_cli_compare_exit_codes(quick_bench_payload, tmp_path, capsys):
    """``repro bench --compare`` prints deltas and gates on the threshold."""
    from repro.cli import main

    payload, output = quick_bench_payload
    argv = ["bench", "--quick", "--repeats", "1", "--algorithms", "kdtt+",
            "--workloads", "ind", "--output", "-",
            "--compare", str(output)]
    assert main(argv) == 0
    assert "comparison against baseline" in capsys.readouterr().out
    # An absurdly tight threshold turns any nonzero delta into a failure.
    assert main(argv + ["--regression-threshold", "0.000001"]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_format_bench_mentions_every_cell(quick_bench_payload):
    payload, _ = quick_bench_payload
    text = format_bench(payload)
    for workload_name, section in payload["matrix"].items():
        assert "[%s]" % workload_name in text
        for name in section["algorithms"]:
            assert name in text
    for name in payload["extras"]:
        assert name in text


def test_algorithm_and_workload_subset_and_no_check():
    payload = run_bench(profile="quick", algorithms=["kdtt+", "dual"],
                        workloads=["anti"], repeats=1, check=False)
    assert payload["workload_axis"] == ["anti"]
    section = payload["matrix"]["anti"]
    assert sorted(section["algorithms"]) == ["dual", "kdtt+"]
    assert payload["reference_algorithm"] is None
    for entry in section["algorithms"].values():
        assert "parity" not in entry
    # An explicit subset is a request to time just that subset.
    assert payload["extras"] == {}


def test_axes_are_canonicalized_and_validated_up_front():
    """Aliases land on their matching variant, typos fail before timing,
    duplicates collapse, and empty selections mean the defaults."""
    payload = run_bench(profile="quick", algorithms=["DUALMS", "kdtt+"],
                        workloads=["ANTI", "anti"], repeats=1)
    assert payload["workload_axis"] == ["anti"]
    section = payload["matrix"]["anti"]
    assert sorted(section["algorithms"]) == ["dual-ms", "kdtt+"]
    assert section["algorithms"]["dual-ms"]["variant"] == "ratio-2d"
    assert section["algorithms"]["dual-ms"]["parity"] == "ok"
    with pytest.raises(KeyError, match="unknown ARSP algorithm"):
        run_bench(profile="quick", algorithms=["kdtt+", "kdt"], repeats=1)
    with pytest.raises(KeyError, match="unknown workload"):
        run_bench(profile="quick", workloads=["ind", "tpch"], repeats=1)
    empty = run_bench(profile="quick", algorithms=["kdtt+"], workloads=[],
                      repeats=1, check=False)
    assert empty["workload_axis"] == list(PROFILES["quick"].workload_names)


@pytest.mark.bench
def test_full_matrix_parity_sweep():
    """Opt-in (``pytest -m bench``): every algorithm on all six workloads
    at the quick scale, every cell parity-checked against KDTT+."""
    payload = run_bench(profile="quick", workloads=available_workloads(),
                        repeats=1)
    assert payload["workload_axis"] == available_workloads()
    for workload_name, section in payload["matrix"].items():
        assert sorted(section["algorithms"]) == list_algorithms()
        for name, entry in section["algorithms"].items():
            assert entry["parity"] == "ok", (workload_name, name)
