"""Tier-1 smoke test for the ``repro bench`` regression harness.

Unlike the ``bench_*`` figure reproductions (which need
``pytest --benchmark-only`` and minutes of runtime), this file is collected
by the plain tier-1 ``pytest`` run: it executes the ``quick`` profile of
the harness end to end — every registered algorithm, parity checks, JSON
output — in a couple of seconds.
"""

from __future__ import annotations

import json

from repro.algorithms.registry import list_algorithms
from repro.experiments.perf import (EXTRA_PATHS, PROFILES, SCHEMA,
                                    format_bench, run_bench)


def test_quick_profile_covers_all_algorithms(quick_bench_payload):
    payload, _ = quick_bench_payload
    assert payload["schema"] == SCHEMA
    assert payload["profile"] == "quick"
    assert sorted(payload["algorithms"]) == list_algorithms()
    for name, entry in payload["algorithms"].items():
        assert entry["repeats"] == PROFILES["quick"].repeats
        assert len(entry["runs_s"]) == entry["repeats"]
        assert entry["min_s"] <= entry["median_s"], name
        assert entry["workload"] in payload["workloads"], name


def test_quick_profile_covers_extra_paths(quick_bench_payload):
    """The eclipse and continuous hot paths ride along in ``extras``."""
    payload, _ = quick_bench_payload
    assert sorted(payload["extras"]) == sorted(EXTRA_PATHS)
    for name, entry in payload["extras"].items():
        assert entry["repeats"] == PROFILES["quick"].repeats
        assert len(entry["runs_s"]) == entry["repeats"]
        assert entry["min_s"] <= entry["median_s"], name
        assert entry["workload"] in payload["workloads"], name
        assert entry["result_size"] >= 0, name


def test_quick_profile_eclipse_extras_match_naive(quick_bench_payload):
    payload, _ = quick_bench_payload
    for name in ("eclipse-quad", "eclipse-dual-s"):
        assert payload["extras"][name]["parity"] == "ok", name


def test_quick_profile_results_match_reference(quick_bench_payload):
    payload, _ = quick_bench_payload
    assert payload["reference_algorithm"] == "kdtt+"
    mismatches = {name: entry["parity"]
                  for name, entry in payload["algorithms"].items()
                  if entry["parity"] != "ok"}
    assert not mismatches


def test_json_output_round_trips(quick_bench_payload):
    payload, output = quick_bench_payload
    on_disk = json.loads(output.read_text(encoding="utf-8"))
    assert on_disk == json.loads(json.dumps(payload))


def test_format_bench_mentions_every_algorithm(quick_bench_payload):
    payload, _ = quick_bench_payload
    text = format_bench(payload)
    for name in payload["algorithms"]:
        assert name in text


def test_algorithm_subset_and_no_check():
    payload = run_bench(profile="quick", algorithms=["kdtt+", "dual"],
                        repeats=1, check=False)
    assert sorted(payload["algorithms"]) == ["dual", "kdtt+"]
    assert payload["reference_algorithm"] is None
    for entry in payload["algorithms"].values():
        assert "parity" not in entry
    # An explicit subset is a request to time just that subset.
    assert payload["extras"] == {}
