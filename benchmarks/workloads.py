"""Workload construction shared by the benchmark modules.

The scaled-down counterparts of the paper's default parameters are defined
here in one place so EXPERIMENTS.md can reference them:

=================  ===========  ==================
parameter          paper        benchmarks
=================  ===========  ==================
m (objects)        16,384       192 (sweep 64-512)
cnt (instances)    400          4   (sweep 2-8)
d (dimensions)     4            4   (sweep 2-5)
l (region length)  0.2          0.2
φ (incomplete)     0            0
constraints        WR, c = d-1  WR, c = d-1
=================  ===========  ==================
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.preference import LinearConstraints
from repro.data.constraints import (interactive_constraints,
                                    weak_ranking_constraints)
from repro.data.real import car_dataset, iip_dataset, nba_dataset
from repro.data.synthetic import SyntheticConfig, generate_uncertain_dataset

BENCH_SEED = 2024


def run_once(benchmark, function, *args, **kwargs):
    """Measure a single execution (the figure sweeps are one-shot timings)."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)

#: Scaled-down defaults mirroring the paper's default setting.
DEFAULT_M = 192
DEFAULT_CNT = 4
DEFAULT_D = 4
DEFAULT_L = 0.2
DEFAULT_PHI = 0.0


@lru_cache(maxsize=None)
def bench_dataset(num_objects: int = DEFAULT_M, max_instances: int = DEFAULT_CNT,
                  dimension: int = DEFAULT_D, region_length: float = DEFAULT_L,
                  incomplete_fraction: float = DEFAULT_PHI,
                  distribution: str = "IND", seed: int = BENCH_SEED):
    """Synthetic uncertain dataset (cached so sweeps share generation cost)."""
    config = SyntheticConfig(num_objects=num_objects,
                             max_instances=max_instances,
                             dimension=dimension,
                             region_length=region_length,
                             incomplete_fraction=incomplete_fraction,
                             distribution=distribution,
                             seed=seed)
    return generate_uncertain_dataset(config)


def bench_constraints(dimension: int = DEFAULT_D,
                      num_constraints: int = None,
                      generator: str = "WR",
                      seed: int = BENCH_SEED) -> LinearConstraints:
    """Constraint set for a benchmark workload (WR by default, as in paper)."""
    if num_constraints is None:
        num_constraints = dimension - 1
    if generator.upper() == "WR":
        return weak_ranking_constraints(dimension, num_constraints)
    return interactive_constraints(dimension, num_constraints, seed=seed)


@lru_cache(maxsize=None)
def bench_real_dataset(name: str, seed: int = BENCH_SEED):
    """Scaled-down counterparts of the paper's real datasets."""
    name = name.upper()
    if name == "IIP":
        return iip_dataset(num_records=600, seed=seed)
    if name == "CAR":
        return car_dataset(num_models=150, max_cars_per_model=8, seed=seed)
    if name == "NBA":
        return nba_dataset(num_players=100, max_games=15, num_metrics=8,
                           seed=seed)
    raise ValueError("unknown real dataset %r" % name)
