"""Figure 5(p)-(q): running time and ARSP size vs. number of WR constraints c.

Paper: c from 1 to 5 with d = 6 on IND and ANTI.  Scaled-down sweep: c in
{1, 2, 3} with d = 4 on IND and ANTI.  Expected shape: more constraints
tighten the preference region, strengthening F-dominance — the ARSP size
shrinks while the work per dominance test changes little, so running times
reflect the trade-off between fewer survivors and more tests per survivor.
"""

import pytest

from repro.algorithms import get_algorithm
from repro.core.arsp import arsp_size
from workloads import bench_constraints, bench_dataset, run_once

ALGORITHMS = ["loop", "kdtt+", "qdtt+", "bnb"]
C_VALUES = [1, 2, 3]
DIMENSION = 4


@pytest.mark.parametrize("distribution", ["IND", "ANTI"])
@pytest.mark.parametrize("c", C_VALUES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_vary_c(benchmark, algorithm, c, distribution):
    dataset = bench_dataset(dimension=DIMENSION, distribution=distribution)
    constraints = bench_constraints(dimension=DIMENSION, num_constraints=c)
    implementation = get_algorithm(algorithm)
    result = run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["c"] = c
    benchmark.extra_info["distribution"] = distribution
    benchmark.extra_info["num_vertices"] = (
        constraints.preference_region().num_vertices)
    benchmark.extra_info["arsp_size"] = arsp_size(result)
