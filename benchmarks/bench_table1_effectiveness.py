"""Table I: top players by rskyline probability on the (simulated) NBA data.

The benchmark times the ARSP computation behind the table and prints the
table itself (run pytest with ``-s`` to see it), including the ``*`` marks
for members of the aggregated rskyline — the same layout as the paper's
Table I.  The companion script ``examples/nba_effectiveness.py`` prints the
full analysis outside the benchmark harness.
"""

import pytest

from repro.core.arsp import compute_arsp
from repro.data.constraints import weak_ranking_constraints
from repro.experiments.effectiveness import (format_ranking_table,
                                             rskyline_probability_ranking)
from workloads import bench_real_dataset, run_once


@pytest.fixture(scope="module")
def nba_3d():
    return bench_real_dataset("NBA").project([0, 1, 2])


def test_table1_arsp_computation(benchmark, nba_3d):
    constraints = weak_ranking_constraints(3)
    arsp = run_once(benchmark, compute_arsp, nba_3d, constraints,
                    algorithm="kdtt+")
    rows = rskyline_probability_ranking(nba_3d, constraints, top_k=14,
                                        arsp=arsp)
    print()
    print(format_ranking_table(
        rows, "Table I - top-14 players by rskyline probability "
              "(* = aggregated rskyline member)"))
    benchmark.extra_info["top_player"] = rows[0].label
    benchmark.extra_info["top_probability"] = round(rows[0].probability, 4)
    benchmark.extra_info["aggregated_members_in_top14"] = sum(
        1 for row in rows if row.in_aggregated_rskyline)
