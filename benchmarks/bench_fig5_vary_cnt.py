"""Figure 5(d)-(f): running time and ARSP size vs. instance count cnt.

Paper: cnt from 100 to 600 (IND/ANTI/CORR).  Scaled-down sweep: cnt in
{2, 4, 8} on IND.  Expected shape: running time and ARSP size grow with cnt;
the relative order of the algorithms is unchanged.
"""

import pytest

from repro.algorithms import get_algorithm
from repro.core.arsp import arsp_size
from workloads import bench_constraints, bench_dataset, run_once

ALGORITHMS = ["loop", "kdtt+", "qdtt+", "bnb"]
CNT_VALUES = [2, 4, 8]


@pytest.mark.parametrize("cnt", CNT_VALUES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_vary_cnt(benchmark, algorithm, cnt):
    dataset = bench_dataset(max_instances=cnt)
    constraints = bench_constraints()
    implementation = get_algorithm(algorithm)
    result = run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["cnt"] = cnt
    benchmark.extra_info["num_instances"] = dataset.num_instances
    benchmark.extra_info["arsp_size"] = arsp_size(result)
