"""Table II: top players by skyline probability (ASP) on the NBA data.

Times the ASP computation and prints the Table II style ranking, plus the
cross-table observation the paper highlights: rskyline probabilities are
bounded by skyline probabilities and the two rankings agree on the strongest
players while diverging in the tail.
"""

import pytest

from repro.data.constraints import weak_ranking_constraints
from repro.experiments.effectiveness import (format_ranking_table,
                                             rank_correlation,
                                             rskyline_probability_ranking,
                                             skyline_probability_ranking)
from repro.algorithms.asp import compute_skyline_probabilities
from workloads import bench_real_dataset, run_once


@pytest.fixture(scope="module")
def nba_3d():
    return bench_real_dataset("NBA").project([0, 1, 2])


def test_table2_asp_computation(benchmark, nba_3d):
    run_once(benchmark, compute_skyline_probabilities, nba_3d)
    table2 = skyline_probability_ranking(nba_3d, top_k=14)
    table1 = rskyline_probability_ranking(nba_3d, weak_ranking_constraints(3),
                                          top_k=14)
    print()
    print(format_ranking_table(table2,
                               "Table II - top-14 players by skyline "
                               "probability", probability_header="Pr_sky"))
    overlap = rank_correlation(table1, table2)
    benchmark.extra_info["top_player"] = table2[0].label
    benchmark.extra_info["top_probability"] = round(table2[0].probability, 4)
    benchmark.extra_info["overlap_with_table1"] = round(overlap, 3)
