"""Figure 5(r)-(t): interactively generated (IM) constraints.

Paper: IND data with IM constraints, varying m, d and c; the number of
vertices of the preference region grows with c, which hurts QDTT+ in
particular (the quadtree's fan-out is exponential in the number of
vertices).  Scaled-down sweeps: m in {64, 128}, c in {1, 3, 5} at d = 4.
"""

import pytest

from repro.algorithms import get_algorithm
from repro.core.arsp import arsp_size
from workloads import bench_constraints, bench_dataset, run_once

ALGORITHMS = ["loop", "kdtt+", "qdtt+", "bnb"]


@pytest.mark.parametrize("m", [64, 128])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_im_vary_m(benchmark, algorithm, m):
    dataset = bench_dataset(num_objects=m)
    constraints = bench_constraints(generator="IM", num_constraints=3)
    implementation = get_algorithm(algorithm)
    result = run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["m"] = m
    benchmark.extra_info["num_vertices"] = (
        constraints.preference_region().num_vertices)
    benchmark.extra_info["arsp_size"] = arsp_size(result)


@pytest.mark.parametrize("c", [1, 3, 5])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_im_vary_c(benchmark, algorithm, c):
    dataset = bench_dataset()
    constraints = bench_constraints(generator="IM", num_constraints=c)
    implementation = get_algorithm(algorithm)
    result = run_once(benchmark, implementation, dataset, constraints)
    benchmark.extra_info["c"] = c
    benchmark.extra_info["num_vertices"] = (
        constraints.preference_region().num_vertices)
    benchmark.extra_info["arsp_size"] = arsp_size(result)
